"""The assessment pipeline: Figure 1 end to end.

``AssessmentPipeline`` first builds (or accepts) a *world* — the virtual
internet with the listing site, consent pages, bot websites, the GitHub
stand-in, and the messaging platform itself — then runs the paper's four
stages against it:

1. **Data collection** — crawl the listing site, resolve invite permissions.
2. **Traceability analysis** — hunt privacy policies, classify disclosure.
3. **Code analysis** — crawl GitHub links, detect permission-check APIs.
4. **Dynamic analysis** — honeypot campaign over the most-voted bots.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable

from repro.analysis.code_stats import CodeAnalysisSummary
from repro.analysis.developer_stats import DeveloperDistribution
from repro.analysis.permission_stats import PermissionDistribution
from repro.analysis.traceability_stats import TraceabilitySummary
from repro.botstore.host import build_store_host
from repro.codeanalysis.analyzer import CodeAnalyzer
from repro.core.checkpoint import (
    STAGE_CODE,
    STAGE_CRAWL,
    STAGE_HONEYPOT,
    STAGE_TRACEABILITY,
    PipelineCheckpoint,
    honeypot_from_dict,
    honeypot_to_dict,
    repo_analysis_from_dict,
    repo_analysis_to_dict,
    traceability_from_dict,
    traceability_to_dict,
)
from repro.core.config import PipelineConfig
from repro.core.crashpoints import crashpoint
from repro.core.journal import (
    JournalStats,
    StageRecorder,
    UnitTracker,
    WriteAheadJournal,
    capture_world_state,
    record_resume_provenance,
    restore_world_state,
    solver_history_dollars,
)
from repro.core.metrics import RunMetrics, ShardMetrics, StageMetrics
from repro.core.resilience import CircuitBreakerRegistry, FaultLedger, FaultRecord, RetryBudget, StageStatus
from repro.core.results import PipelineResult
from repro.core.storage import RecoveryManager, StorageError, install_disk_chaos
from repro.core.sharding import (
    ShardedExecutor,
    ShardOutcome,
    ShardWorld,
    merge_fault_records,
    merge_honeypot_reports,
    merge_in_order,
    merge_quarantine_records,
    partition,
)
from repro.core.supervision import BotSupervisor, QuarantineLog, QuarantineRecord, verify_accounting
from repro.discordsim import behaviors
from repro.discordsim.permissions import Permission
from repro.discordsim.platform import DiscordPlatform
from repro.ecosystem.generator import InviteStatus
from repro.ecosystem.generator import Ecosystem, EcosystemConfig, generate_ecosystem
from repro.honeypot.experiment import HoneypotExperiment
from repro.scraper.github import GitHubScraper
from repro.scraper.topgg import ScrapedBot, TopGGScraper
from repro.scraper.website import WebsiteScraper
from repro.sites.botwebsites import BotWebsiteBuilder
from repro.sites.discordweb import DiscordWebsite
from repro.sites.github import GitHubSite
from repro.traceability.analyzer import TraceabilityAnalyzer
from repro.traceability.validation import ManualReviewValidator
from repro.web.browser import WebDriverException
from repro.web.captcha import TwoCaptchaClient
from repro.web.http import Url
from repro.web.network import NetworkError, VirtualClock, VirtualInternet

#: Degradation callback handed to stages: ``(host, error, bots_skipped, detail)``.
StageFaultSink = Callable[[str, BaseException, int, str], None]


@dataclass
class PipelineWorld:
    """Everything the pipeline measures: the simulated internet + platform."""

    ecosystem: Ecosystem
    clock: VirtualClock
    internet: VirtualInternet
    platform: DiscordPlatform
    solver: TwoCaptchaClient

    @classmethod
    def build(cls, config: PipelineConfig) -> "PipelineWorld":
        eco_config = EcosystemConfig(
            n_bots=config.n_bots,
            seed=config.seed,
            targets=config.targets,
            honeypot_window=config.honeypot_sample_size,
        )
        if config.stream:
            # Same per-rank definition, never materialized: sites decode
            # ranks back out of names/ids instead of holding index maps.
            from repro.ecosystem.stream import StreamingEcosystem

            ecosystem = StreamingEcosystem(eco_config)
        else:
            ecosystem = generate_ecosystem(eco_config)
        clock = VirtualClock()
        internet = VirtualInternet(clock, seed=config.seed)
        platform = DiscordPlatform(clock, captcha_seed=config.seed + 1)
        build_store_host(ecosystem, internet, config.defenses)
        DiscordWebsite(ecosystem).register(internet)
        GitHubSite(ecosystem).register(internet)
        BotWebsiteBuilder(ecosystem).register(internet)
        from repro.sites.reddit import RedditSite

        RedditSite(seed=config.seed + 5).register(internet)
        solver = TwoCaptchaClient(clock, balance=config.captcha_balance, seed=config.seed + 2)
        if config.chaos_profile is not None:
            from repro.web.chaos import FaultSchedule

            internet.install_chaos(FaultSchedule(config.chaos_profile, seed=config.chaos_seed))
        return cls(ecosystem=ecosystem, clock=clock, internet=internet, platform=platform, solver=solver)

    @classmethod
    def build_shard(
        cls, config: PipelineConfig, ecosystem: Ecosystem, index: int, start_time: float
    ) -> "PipelineWorld":
        """An isolated per-shard view over an already-generated ecosystem.

        The ecosystem is shared read-only; the clock, internet (with every
        site re-registered), platform and captcha solver are private to the
        shard so worker threads never contend.  Chaos, when configured, is
        installed per shard with a shard-offset seed so each shard draws an
        independent fault schedule.
        """
        clock = VirtualClock(start_time)
        internet = VirtualInternet(clock, seed=config.seed + index)
        platform = DiscordPlatform(clock, captcha_seed=config.seed + 1)
        build_store_host(ecosystem, internet, config.defenses)
        DiscordWebsite(ecosystem).register(internet)
        GitHubSite(ecosystem).register(internet)
        BotWebsiteBuilder(ecosystem).register(internet)
        from repro.sites.reddit import RedditSite

        RedditSite(seed=config.seed + 5).register(internet)
        solver = TwoCaptchaClient(clock, balance=config.captcha_balance, seed=config.seed + 2 + index)
        if config.chaos_profile is not None:
            from repro.web.chaos import FaultSchedule

            internet.install_chaos(FaultSchedule(config.chaos_profile, seed=config.chaos_seed + index))
        return cls(ecosystem=ecosystem, clock=clock, internet=internet, platform=platform, solver=solver)


class _StageTimer:
    """Capture one stage's wall/virtual/traffic deltas for the metrics layer."""

    def __init__(self, pipeline: "AssessmentPipeline", stage: str) -> None:
        self._pipeline = pipeline
        self.stage = stage
        self._wall = time.monotonic()
        self._virtual = pipeline.world.clock.now()
        self._exchanges = pipeline.world.internet.exchanges_total
        self._skipped = pipeline.ledger.bots_skipped(stage)
        self._quarantined = pipeline.quarantines.count(stage)

    def finish(self, bots_processed: int, outcomes: list[ShardOutcome] | None = None) -> StageMetrics:
        shards: list[ShardMetrics] = []
        shard_exchanges = 0
        for outcome in outcomes or ():
            shards.append(
                ShardMetrics(
                    shard=outcome.shard_index,
                    bots=len(outcome.items),
                    wall_seconds=outcome.wall_seconds,
                    virtual_seconds=outcome.virtual_seconds,
                    exchanges=outcome.exchanges,
                    quarantined=len(outcome.quarantines),
                )
            )
            shard_exchanges += outcome.exchanges
        return StageMetrics(
            stage=self.stage,
            wall_seconds=time.monotonic() - self._wall,
            virtual_seconds=self._pipeline.world.clock.now() - self._virtual,
            exchanges=self._pipeline.world.internet.exchanges_total - self._exchanges + shard_exchanges,
            bots_processed=bots_processed,
            bots_skipped=self._pipeline.ledger.bots_skipped(self.stage) - self._skipped,
            bots_quarantined=self._pipeline.quarantines.count(self.stage) - self._quarantined,
            shards=shards,
        )


class AssessmentPipeline:
    """Run the full methodology against a world."""

    def __init__(self, config: PipelineConfig | None = None, world: PipelineWorld | None = None) -> None:
        self.config = config or PipelineConfig()
        self.world = world or PipelineWorld.build(self.config)
        self.traceability_analyzer = TraceabilityAnalyzer()
        self.code_analyzer = CodeAnalyzer(ignore_comments=self.config.ignore_comments_in_code_analysis)
        #: Per-host circuit breakers shared by every scraper in this run.
        self.breakers = CircuitBreakerRegistry(
            self.world.clock,
            failure_threshold=self.config.circuit_failure_threshold,
            recovery_time=self.config.circuit_recovery_time,
        )
        #: Structured account of every fault the run absorbed.
        self.ledger = FaultLedger()
        #: Bots the supervision layer pulled out of a stage mid-flight.
        self.quarantines = QuarantineLog()
        #: Per-stage run metrics (filled by :meth:`run`).
        self.metrics = RunMetrics(shard_count=self.config.shards)
        #: Lazily-built shard worlds (``config.shards > 1`` only).
        self._shard_executor: ShardedExecutor | None = None
        #: Intra-stage write-ahead journals (``config.journal_path`` only):
        #: one for the main world, one per shard (``<path>.shard<k>``).
        self._journal: WriteAheadJournal | None = None
        self._shard_journals: dict[int, WriteAheadJournal] = {}
        #: World-state snapshots for shards not (yet) rebuilt this process,
        #: restored from the checkpoint or a honeypot stage-complete record.
        self._shard_world_states: dict[str, dict] = {}
        #: Process pool for ``config.parallel`` runs (lazily started) and
        #: the journal counters its workers report back.
        self._parallel_runner = None
        self._parallel_journal_stats = JournalStats()
        # Storage-fault injection is process-global (the durable-I/O
        # primitives consult one shim), so installing it here covers every
        # artifact this run writes — and parallel shard workers, which
        # rebuild the pipeline from this same config, arm themselves too.
        if self.config.disk_chaos is not None:
            install_disk_chaos(self.config.disk_chaos, seed=self.config.disk_chaos_seed)
        if self.config.adversarial_bots > 0:
            self._plant_adversaries()

    # -- resilience helpers -------------------------------------------------

    def _stage_budget(self) -> RetryBudget:
        return RetryBudget(self.config.stage_retry_budget)

    def _stage_sink(self, stage: str) -> StageFaultSink:
        def sink(host: str, error: BaseException, bots_skipped: int, detail: str) -> None:
            self.ledger.record(stage, host, error, self.world.clock.now(), bots_skipped=bots_skipped, detail=detail)

        return sink

    def _degrade_sink(self, stage: str) -> StageFaultSink | None:
        return self._stage_sink(stage) if self.config.degrade_on_faults else None

    def _supervisor(
        self,
        stage: str,
        world: ShardWorld | None = None,
        ledger: FaultLedger | None = None,
        quarantines: QuarantineLog | None = None,
        bus=None,
    ) -> BotSupervisor | None:
        """A per-bot supervision firewall for ``stage`` (None when disabled).

        Defaults write to the pipeline's ledger/quarantine log on the main
        clock; a sharded stage passes its shard's world, ledger, log and
        event bus so quarantines land where the shard's other records do.
        Transport faults (``WebDriverException``/``NetworkError``) pass
        through untouched — the existing skip/fault-sink paths own those.
        """
        if not (self.config.degrade_on_faults and self.config.supervise_bots):
            return None
        return BotSupervisor(
            stage=stage,
            clock=world.clock if world is not None else self.world.clock,
            ledger=ledger if ledger is not None else self.ledger,
            quarantines=quarantines if quarantines is not None else self.quarantines,
            bus=bus,
            max_events=self.config.max_bot_events,
            deadline=self.config.bot_deadline,
            # Storage faults must never be absorbed into a quarantine — a
            # bot "quarantined by a full disk" would silently diverge from
            # the golden run; typed storage errors stay loud.
            passthrough=(WebDriverException, NetworkError, StorageError),
        )

    def _plant_adversaries(self) -> None:
        """Flip ``config.adversarial_bots`` sample bots to hostile runtimes.

        A self-test of the supervision layer: eligible bots in the
        most-voted (honeypot) sample become a crasher/flooder/staller
        rotation.  Only ``behavior`` changes — invites, permissions and
        listings stay untouched — so every stage before the honeypot, and
        every unplanted bot inside it, produces byte-identical output to
        an adversary-free run.
        """
        rotation = (behaviors.CRASHER, behaviors.FLOODER, behaviors.STALLER)
        planted = 0
        for bot in self.world.ecosystem.top_voted(self.config.honeypot_sample_size):
            if planted >= self.config.adversarial_bots:
                break
            if bot.invite_status is not InviteStatus.VALID:
                continue
            if bot.behavior in behaviors.INVASIVE_BEHAVIORS or bot.behavior in behaviors.ADVERSARIAL_BEHAVIORS:
                continue
            # The adversary must actually get into the guild and speak:
            # keep the bot's real permissions, require ones that suffice.
            capable = bot.permissions.has(Permission.ADMINISTRATOR) or (
                bot.permissions.has(Permission.VIEW_CHANNEL) and bot.permissions.has(Permission.SEND_MESSAGES)
            )
            if not capable:
                continue
            bot.behavior = rotation[planted % len(rotation)]
            planted += 1

    # -- journal + world-state helpers --------------------------------------

    def _open_journal(self, path: str) -> WriteAheadJournal:
        journal = WriteAheadJournal(path, fsync_every=self.config.journal_fsync_every)
        if journal.discard_detail:
            record_resume_provenance(self.ledger, f"{Path(path).name}: {journal.discard_detail}")
        return journal

    def _main_journal(self) -> WriteAheadJournal | None:
        if self.config.journal_path is None:
            return None
        if self._journal is None:
            self._journal = self._open_journal(self.config.journal_path)
        return self._journal

    def _shard_journal(self, index: int) -> WriteAheadJournal | None:
        """The shard's own journal (created with the shard worlds)."""
        return self._shard_journals.get(index)

    def _capture_all_worlds(self) -> dict:
        """Snapshot the main world and every built shard world.

        Shards never rebuilt this process keep their stashed snapshots —
        a resumed run that replays stages 2–4 from the checkpoint must not
        lose the shard solver spend those snapshots carry.
        """
        payload: dict[str, Any] = {
            "main": capture_world_state(
                self.world.clock, self.world.internet, self.world.solver, self.breakers
            ),
            "shards": dict(self._shard_world_states),
        }
        if self._shard_executor is not None:
            for shard in self._shard_executor.worlds:
                payload["shards"][str(shard.index)] = capture_world_state(
                    shard.clock, shard.internet, shard.solver, shard.breakers
                )
        return payload

    def _restore_all_worlds(self, payload: dict) -> None:
        """Re-enter the simulation exactly where a snapshot left it."""
        main = payload.get("main")
        if main:
            restore_world_state(
                self.world.clock, self.world.internet, self.world.solver, self.breakers, main
            )
        shards = {str(key): value for key, value in payload.get("shards", {}).items()}
        if self._shard_executor is not None:
            for shard in self._shard_executor.worlds:
                state = shards.get(str(shard.index))
                if state:
                    restore_world_state(shard.clock, shard.internet, shard.solver, shard.breakers, state)
        self._shard_world_states = shards

    def _aggregate_journal_stats(self) -> None:
        journals = [journal for journal in (self._journal, *self._shard_journals.values()) if journal is not None]
        worked = self._parallel_journal_stats.to_dict() != JournalStats().to_dict()
        if not journals and not worked:
            return
        total = JournalStats()
        for journal in journals:
            total.merge(journal.stats)
        # Shard journals owned by worker processes report their counters
        # back through the task payloads.
        total.merge(self._parallel_journal_stats)
        self.metrics.journal = total.to_dict()

    def _close_journals(self) -> None:
        for journal in (self._journal, *self._shard_journals.values()):
            if journal is not None:
                journal.close()

    @staticmethod
    def _host_of(url: str | None) -> str:
        if not url:
            return "<unknown>"
        try:
            return Url.parse(url).host or "<unknown>"
        except ValueError:
            return "<unknown>"

    # -- streaming helpers --------------------------------------------------

    def _stream_units(self, bots):
        """Yield a stage's bots in chunk cadence (streamed runs only).

        Materialized runs pass straight through.  Streamed runs fire the
        ``stream.mid_chunk`` / ``stream.after_chunk`` crash points at the
        middle and boundary of every ``config.chunk_size`` window, so the
        crash matrix can kill a run at every phase of chunked consumption.
        """
        if not self.config.stream:
            yield from bots
            return
        chunk = max(self.config.chunk_size, 1)
        for index, bot in enumerate(bots):
            if index % chunk == chunk // 2:
                crashpoint("stream.mid_chunk")
            yield bot
            if (index + 1) % chunk == 0:
                crashpoint("stream.after_chunk")

    def _stage_results(self, stage: str, encode, decode, world=None):
        """A stage's result accumulator: a list, or a disk spill when streaming.

        One JSONL spill per stage (per shard view, when sharded) beside the
        checkpoint, using the stage's checkpoint codecs — so the streamed
        accumulator holds a file handle and a count, never the records.
        """
        if not self.config.stream:
            return []
        from repro.core.spill import SpillList, spill_dir_for

        shard = getattr(world, "index", None)
        name = stage if shard is None else f"{stage}.shard{shard}"
        return SpillList(
            spill_dir_for(self.config.checkpoint_path) / f"{name}.jsonl", encode, decode
        )

    # -- stages ------------------------------------------------------------

    def collect(self) -> tuple[TopGGScraper, "CrawlResult"]:
        """Stage 1: crawl the listing site."""
        scraper = TopGGScraper(
            self.world.internet,
            solver=self.world.solver,
            breakers=self.breakers,
            retry_budget=self._stage_budget(),
        )
        sink = self._degrade_sink(STAGE_CRAWL)
        recorder = None
        journal = self._main_journal()
        if journal is not None:
            tracker = UnitTracker(
                self.world.clock,
                self.world.internet,
                self.ledger,
                self.quarantines,
                breakers=self.breakers,
                budget=scraper.retry_budget,
                solver=self.world.solver,
                scraper=scraper,
            )
            recorder = StageRecorder(journal, STAGE_CRAWL, tracker, self.ledger)
        bots_store = None
        if self.config.stream:
            from repro.scraper.checkpoint import scraped_bot_from_dict, scraped_bot_to_dict

            bots_store = self._stage_results(STAGE_CRAWL, scraped_bot_to_dict, scraped_bot_from_dict)
        crawl = scraper.crawl(
            max_pages=self.config.max_pages,
            resolve_permissions=self.config.resolve_permissions,
            on_fault=sink,
            recorder=recorder,
            bots=bots_store,
        )
        if sink is not None and self.config.max_pages is None:
            # Reconcile: an abandoned pagination (or an unparseable list
            # page) loses listings nobody counted bot-by-bot.  The pipeline
            # knows the population, so the ledger accounts the remainder —
            # collected + skipped always equals the expected population.
            expected = len(self.world.ecosystem.bots)
            missing = expected - len(crawl.bots) - self.ledger.bots_skipped(STAGE_CRAWL)
            if missing > 0:
                from repro.scraper.topgg import TOPGG_HOST

                self.ledger.record(
                    STAGE_CRAWL,
                    TOPGG_HOST,
                    "PaginationAbandoned",
                    self.world.clock.now(),
                    bots_skipped=missing,
                    detail=f"{missing} listings never reached",
                )
        return scraper, crawl

    def analyze_traceability(
        self,
        active_bots: list[ScrapedBot],
        on_fault: StageFaultSink | None = None,
        world=None,
        breakers: CircuitBreakerRegistry | None = None,
        supervisor: BotSupervisor | None = None,
        journal: WriteAheadJournal | None = None,
        ledger: FaultLedger | None = None,
        quarantines: QuarantineLog | None = None,
    ) -> list:
        """Stage 2: website crawl + keyword traceability per active bot.

        With ``on_fault``, a bot whose website dies at the transport level
        (circuit open, connection dropped) is skipped and reported instead
        of crashing the stage; unreachable-but-resolvable websites remain a
        *classification* outcome (broken traceability), not a fault.

        ``world``/``breakers`` point the stage at an isolated shard view;
        by default it runs against the pipeline's main world.  With a
        ``supervisor``, each bot's fetch+classify runs inside the
        supervision firewall: a crash or deadline blow-out quarantines the
        bot instead of killing the stage (transport faults still reach
        ``on_fault`` as before).

        With a ``journal``, every bot — processed, skipped or quarantined —
        commits one write-ahead record after its unit of work, and a resumed
        run replays the journal's prefix instead of re-crawling those bots.
        ``ledger``/``quarantines`` name where the stage's records land (a
        shard's own logs for sharded runs) so replay appends to the same place.
        """
        from repro.scraper.website import PolicyFetchResult

        world = world or self.world
        ledger = ledger if ledger is not None else self.ledger
        quarantines = quarantines if quarantines is not None else self.quarantines
        website_scraper = WebsiteScraper(
            world.internet,
            solver=world.solver,
            client_id="policy-scraper",
            breakers=breakers or self.breakers,
            retry_budget=self._stage_budget(),
        )
        recorder = None
        if journal is not None:
            tracker = UnitTracker(
                world.clock,
                world.internet,
                ledger,
                quarantines,
                breakers=breakers or self.breakers,
                budget=website_scraper.retry_budget,
                solver=world.solver,
                scraper=website_scraper,
            )
            recorder = StageRecorder(journal, STAGE_TRACEABILITY, tracker, ledger)
        results = self._stage_results(
            STAGE_TRACEABILITY, traceability_to_dict, traceability_from_dict, world=world
        )
        for bot in self._stream_units(active_bots):
            if recorder is not None:
                replayed, payload = recorder.try_replay(bot.name)
                if replayed:
                    if payload is not None:
                        results.append(traceability_from_dict(payload))
                    continue
                recorder.begin_unit()

            def study(bot=bot):
                if bot.website_url:
                    fetch = website_scraper.fetch_policy(bot.website_url)
                else:
                    fetch = PolicyFetchResult(False, False, False)
                return self.traceability_analyzer.analyze(
                    bot_name=bot.name,
                    permissions=bot.permissions,
                    has_website=fetch.website_reachable,
                    has_policy_link=fetch.policy_link_found,
                    policy_page_valid=fetch.policy_page_valid,
                    policy_text=fetch.policy_text,
                )

            try:
                if supervisor is None:
                    value = study()
                    results.append(value)
                    if recorder is not None:
                        recorder.commit(bot.name, traceability_to_dict(value))
                        crashpoint("traceability.after_bot")
                    continue
                outcome = supervisor.run(bot.name, study)
            except (WebDriverException, NetworkError) as error:
                if on_fault is None:
                    raise
                on_fault(self._host_of(bot.website_url), error, 1, f"traceability skipped for {bot.name}")
                if recorder is not None:
                    recorder.commit(bot.name, None)
                    crashpoint("traceability.after_bot")
                continue
            payload = None
            if outcome.completed:
                results.append(outcome.value)
                payload = traceability_to_dict(outcome.value)
            if recorder is not None:
                recorder.commit(bot.name, payload)
                crashpoint("traceability.after_bot")
        return results

    def analyze_code(
        self,
        active_bots: list[ScrapedBot],
        on_fault: StageFaultSink | None = None,
        world=None,
        breakers: CircuitBreakerRegistry | None = None,
        supervisor: BotSupervisor | None = None,
        journal: WriteAheadJournal | None = None,
        ledger: FaultLedger | None = None,
        quarantines: QuarantineLog | None = None,
    ) -> list:
        """Stage 3: GitHub crawl + Table-3 pattern detection.

        Journal semantics match :meth:`analyze_traceability`; the unit key
        space only covers bots with a GitHub link (the others never run).
        """
        world = world or self.world
        ledger = ledger if ledger is not None else self.ledger
        quarantines = quarantines if quarantines is not None else self.quarantines
        github_scraper = GitHubScraper(
            world.internet,
            solver=world.solver,
            client_id="repo-scraper",
            breakers=breakers or self.breakers,
            retry_budget=self._stage_budget(),
        )
        recorder = None
        if journal is not None:
            tracker = UnitTracker(
                world.clock,
                world.internet,
                ledger,
                quarantines,
                breakers=breakers or self.breakers,
                budget=github_scraper.retry_budget,
                solver=world.solver,
                scraper=github_scraper,
            )
            recorder = StageRecorder(journal, STAGE_CODE, tracker, ledger)
        analyses = self._stage_results(
            STAGE_CODE, repo_analysis_to_dict, repo_analysis_from_dict, world=world
        )
        for bot in self._stream_units(active_bots):
            if not bot.github_url:
                continue
            if recorder is not None:
                replayed, payload = recorder.try_replay(bot.name)
                if replayed:
                    if payload is not None:
                        analyses.append(repo_analysis_from_dict(payload))
                    continue
                recorder.begin_unit()

            def study(bot=bot):
                fetched = github_scraper.fetch_repo(bot.github_url)
                return self.code_analyzer.analyze_repo(
                    bot_name=bot.name,
                    files=fetched.files,
                    link_valid=fetched.link_valid,
                    main_language=fetched.main_language,
                )

            try:
                if supervisor is None:
                    value = study()
                    analyses.append(value)
                    if recorder is not None:
                        recorder.commit(bot.name, repo_analysis_to_dict(value))
                        crashpoint("code.after_bot")
                    continue
                outcome = supervisor.run(bot.name, study)
            except (WebDriverException, NetworkError) as error:
                if on_fault is None:
                    raise
                on_fault(self._host_of(bot.github_url), error, 1, f"code analysis skipped for {bot.name}")
                if recorder is not None:
                    recorder.commit(bot.name, None)
                    crashpoint("code.after_bot")
                continue
            payload = None
            if outcome.completed:
                analyses.append(outcome.value)
                payload = repo_analysis_to_dict(outcome.value)
            if recorder is not None:
                recorder.commit(bot.name, payload)
                crashpoint("code.after_bot")
        return analyses

    def run_honeypot(
        self,
        on_fault: StageFaultSink | None = None,
        sample: list | None = None,
        world=None,
        seed: int | None = None,
        supervisor: BotSupervisor | None = None,
        journal: WriteAheadJournal | None = None,
    ) -> "HoneypotReport":
        """Stage 4: dynamic analysis over the most-voted sample.

        ``sample``/``world``/``seed`` let a shard run its bucket of bots on
        its own platform view; the defaults reproduce the sequential run.
        On the main world a supervisor is built automatically (when
        supervision is enabled) so hostile runtimes are quarantined; shard
        callers pass their own, wired to the shard's clock and bus.

        With a ``journal``, one forensic record is appended per settled bot
        outcome.  Unlike stages 2–3 these records carry no replayable state
        (guild/platform internals replay all-or-nothing): a crash mid-stage
        discards them and re-runs the stage from its restored start state;
        the ``stage_complete`` record :meth:`run` appends afterwards is what
        a resumed run actually replays.
        """
        if supervisor is None and world is None:
            supervisor = self._supervisor(STAGE_HONEYPOT, bus=self.world.platform.events)
        world = world or self.world
        unit_sink = None
        if journal is not None:

            def unit_sink(outcome) -> None:
                journal.append(STAGE_HONEYPOT, f"bot-{outcome.bot_name}", {"result": None})
                crashpoint("honeypot.after_bot")

        experiment = HoneypotExperiment(
            world.platform,
            world.internet,
            solver=world.solver,
            seed=self.config.seed + 3 if seed is None else seed,
        )
        feed_source = None
        if self.config.use_osn_feed:
            from repro.honeypot.osn_source import OsnFeedSource

            try:
                source = OsnFeedSource.scrape(world.internet, seed=self.config.seed + 6)
            except (WebDriverException, NetworkError) as error:
                if on_fault is None:
                    raise
                on_fault("reddit.sim", error, 0, "OSN feed unavailable; falling back to generated feed")
                source = None
            if source is not None and len(source):
                feed_source = source.next_message
        if sample is None:
            sample = self.world.ecosystem.top_voted(self.config.honeypot_sample_size)
        return experiment.run(
            sample,
            personas_per_guild=self.config.personas_per_guild,
            feed_messages=self.config.feed_messages,
            observation_window=self.config.observation_window,
            feed_source=feed_source,
            fault_sink=on_fault,
            supervisor=supervisor,
            unit_sink=unit_sink,
        )

    # -- sharded execution -------------------------------------------------------

    def _parallel_active(self) -> bool:
        """Whether shard buckets run in worker processes this run.

        Crash injection and crash-point recording need every crashpoint
        hit in one process, so arming either environment knob falls the
        run back to the in-process (threaded) shard path — same output,
        byte for byte, just without the parallel speedup.
        """
        from repro.core.crashpoints import ENV_CRASH_AT, ENV_RECORD

        return (
            self.config.parallel
            and self.config.shards > 1
            and not os.environ.get(ENV_CRASH_AT)
            and not os.environ.get(ENV_RECORD)
        )

    def _sharded(self) -> ShardedExecutor:
        """The shard worlds, built lazily at the first sharded stage.

        A resumed run re-enters each shard exactly where the saving run left
        it: freshly built worlds are overwritten with the stashed per-shard
        snapshots (RNG streams, chaos draws, breakers, solver accounts) so a
        sharded resume stays byte-identical to an uninterrupted run.
        """
        if self._shard_executor is None:
            start_time = self.world.clock.now()
            worlds = []
            for index in range(self.config.shards):
                view = PipelineWorld.build_shard(self.config, self.world.ecosystem, index, start_time)
                worlds.append(
                    ShardWorld(
                        index=index,
                        clock=view.clock,
                        internet=view.internet,
                        platform=view.platform,
                        solver=view.solver,
                        breakers=CircuitBreakerRegistry(
                            view.clock,
                            failure_threshold=self.config.circuit_failure_threshold,
                            recovery_time=self.config.circuit_recovery_time,
                        ),
                    )
                )
            for shard in worlds:
                state = self._shard_world_states.get(str(shard.index))
                if state:
                    restore_world_state(shard.clock, shard.internet, shard.solver, shard.breakers, state)
            # In parallel mode each worker process owns its shard journal
            # exclusively; the parent must not hold (and truncate) them.
            if self.config.journal_path is not None and not self._parallel_active():
                for shard in worlds:
                    if shard.index not in self._shard_journals:
                        self._shard_journals[shard.index] = self._open_journal(
                            f"{self.config.journal_path}.shard{shard.index}"
                        )
            self._shard_executor = ShardedExecutor(worlds)
        return self._shard_executor

    def _shard_sink(self, stage: str, shard: ShardWorld) -> StageFaultSink | None:
        """A fault sink writing to the shard's own ledger on its own clock."""
        if not self.config.degrade_on_faults:
            return None

        def sink(host: str, error: BaseException, bots_skipped: int, detail: str) -> None:
            shard.ledger.record(stage, host, error, shard.clock.now(), bots_skipped=bots_skipped, detail=detail)

        return sink

    def run_shard_bucket(self, stage: str, shard: ShardWorld, bots: list, journal: WriteAheadJournal | None):
        """Run one shard's bucket of ``stage`` — the single code path shared
        by the threaded executor and the process-pool workers.

        Faults, quarantines and supervision all land in the *shard's* own
        ledger/log/bus; the caller extracts the stage's deltas afterwards.
        """
        if stage == STAGE_TRACEABILITY:
            return self.analyze_traceability(
                bots,
                on_fault=self._shard_sink(STAGE_TRACEABILITY, shard),
                world=shard,
                breakers=shard.breakers,
                supervisor=self._supervisor(
                    STAGE_TRACEABILITY, world=shard, ledger=shard.ledger, quarantines=shard.quarantines
                ),
                journal=journal,
                ledger=shard.ledger,
                quarantines=shard.quarantines,
            )
        if stage == STAGE_CODE:
            return self.analyze_code(
                bots,
                on_fault=self._shard_sink(STAGE_CODE, shard),
                world=shard,
                breakers=shard.breakers,
                supervisor=self._supervisor(
                    STAGE_CODE, world=shard, ledger=shard.ledger, quarantines=shard.quarantines
                ),
                journal=journal,
                ledger=shard.ledger,
                quarantines=shard.quarantines,
            )
        if stage == STAGE_HONEYPOT:
            if not bots:
                from repro.honeypot.experiment import HoneypotReport

                return HoneypotReport()
            return self.run_honeypot(
                on_fault=self._shard_sink(STAGE_HONEYPOT, shard),
                sample=bots,
                world=shard,
                # Prime stride keeps shard streams clear of the other
                # seed-derived streams (seed+1..seed+6).
                seed=self.config.seed + 3 + 7919 * (shard.index + 1),
                supervisor=self._supervisor(
                    STAGE_HONEYPOT,
                    world=shard,
                    ledger=shard.ledger,
                    quarantines=shard.quarantines,
                    bus=shard.platform.events,
                ),
                journal=journal,
            )
        raise ValueError(f"stage {stage!r} is not sharded")

    def _process_runner(self):
        """The run's process pool, started on first parallel stage."""
        if self._parallel_runner is None:
            from repro.core.parallel import ProcessShardRunner

            self._parallel_runner = ProcessShardRunner(max_workers=self.config.shards)
        return self._parallel_runner

    def _close_parallel_runner(self) -> None:
        if self._parallel_runner is not None:
            self._parallel_runner.close()
            self._parallel_runner = None

    def _run_parallel_stage(
        self, stage: str, executor: ShardedExecutor, buckets: list[list]
    ) -> list[ShardOutcome]:
        """Run every shard's bucket in a worker process; outcomes in shard order.

        The parent captures each shard world, ships it to a worker, and on
        return restores the worker's post-stage snapshot into its own shard
        world — so the parent-side worlds evolve exactly as if the stage had
        run on threads, and every later consumer (clock sync, checkpointing,
        captcha accounting) is none the wiser.
        """
        from repro.core.parallel import ShardTaskSpec, decode_stage_value

        child_config = replace(self.config, checkpoint_path=None, journal_path=None, parallel=False)
        specs = []
        for shard, bucket in zip(executor.worlds, buckets):
            specs.append(
                ShardTaskSpec(
                    stage=stage,
                    index=shard.index,
                    start_time=shard.clock.now(),
                    config=child_config,
                    # Honeypot buckets are ecosystem bot profiles, outside
                    # the pickling contract; the worker recomputes its
                    # bucket from the deterministic sample partition.
                    bots=None if stage == STAGE_HONEYPOT else list(bucket),
                    world_state=capture_world_state(shard.clock, shard.internet, shard.solver, shard.breakers),
                    journal_path=(
                        f"{self.config.journal_path}.shard{shard.index}"
                        if self.config.journal_path is not None
                        else None
                    ),
                )
            )
        payloads = self._process_runner().run(specs)
        outcomes: list[ShardOutcome] = []
        for shard, bucket, payload in zip(executor.worlds, buckets, payloads):
            restore_world_state(shard.clock, shard.internet, shard.solver, shard.breakers, payload["world"])
            faults = [FaultRecord.from_dict(record) for record in payload["faults"]]
            quarantined = [QuarantineRecord.from_dict(record) for record in payload["quarantines"]]
            shard.ledger.records.extend(faults)
            shard.quarantines.records.extend(quarantined)
            if payload.get("journal_discard"):
                record_resume_provenance(self.ledger, payload["journal_discard"])
            stats = payload.get("journal_stats")
            if stats is not None:
                self._parallel_journal_stats.merge(
                    JournalStats(
                        appended=stats.get("appended", 0),
                        replayed=stats.get("replayed", 0),
                        discarded=stats.get("discarded", 0),
                    )
                )
            outcomes.append(
                ShardOutcome(
                    shard_index=shard.index,
                    items=list(bucket),
                    value=decode_stage_value(stage, payload["value"]),
                    wall_seconds=payload["wall_seconds"],
                    virtual_seconds=payload["virtual_seconds"],
                    exchanges=payload["exchanges"],
                    faults=faults,
                    quarantines=quarantined,
                )
            )
        return outcomes

    def _run_sharded_stage(self, stage: str, buckets: list[list]) -> list[ShardOutcome]:
        """Dispatch a sharded stage to processes or threads, then merge."""
        executor = self._sharded()
        if self._parallel_active():
            outcomes = self._run_parallel_stage(stage, executor, buckets)
        else:
            outcomes = executor.run_stage(
                buckets,
                lambda shard, bots: self.run_shard_bucket(stage, shard, bots, self._shard_journal(shard.index)),
            )
        self._finish_sharded_stage(executor, outcomes)
        return outcomes

    def _finish_sharded_stage(self, executor: ShardedExecutor, outcomes: list[ShardOutcome]) -> None:
        """Merge shard fault records and advance the main clock to the horizon.

        Virtual time merges as *max across shards*: shards ran concurrently
        in simulated time, so the campaign is as long as its slowest shard.
        """
        merge_fault_records(self.ledger, outcomes)
        merge_quarantine_records(self.quarantines, outcomes)
        horizon = executor.sync_clocks()
        now = self.world.clock.now()
        if horizon > now:
            self.world.clock.advance(horizon - now)
        crashpoint("sharding.after_merge")

    def _sharded_traceability(self, active: list[ScrapedBot]) -> tuple[list, list[ShardOutcome]]:
        """Stage 2 across shards, merged back to the input bot order."""
        buckets = partition(active, self.config.shards, key=lambda bot: bot.listing_id)
        outcomes = self._run_sharded_stage(STAGE_TRACEABILITY, buckets)
        merged = merge_in_order(
            outcomes,
            [bot.name for bot in active],
            key=lambda item: item.bot_name,
            what="traceability merge",
        )
        return merged, outcomes

    def _sharded_code(self, active: list[ScrapedBot]) -> tuple[list, list[ShardOutcome]]:
        """Stage 3 across shards, merged back to the input bot order."""
        buckets = partition(active, self.config.shards, key=lambda bot: bot.listing_id)
        outcomes = self._run_sharded_stage(STAGE_CODE, buckets)
        # Only GitHub-linked bots ever enter the stage; the others are
        # legitimately absent from every shard, not silently dropped.
        merged = merge_in_order(
            outcomes,
            [bot.name for bot in active if bot.github_url],
            key=lambda item: item.bot_name,
            what="code merge",
        )
        return merged, outcomes

    def _sharded_honeypot(self) -> tuple["HoneypotReport", list[ShardOutcome]]:
        """Stage 4 across shards: each shard honeypots its bucket on its own platform."""
        sample = self.world.ecosystem.top_voted(self.config.honeypot_sample_size)
        buckets = partition(sample, self.config.shards, key=lambda bot: bot.client_id)
        outcomes = self._run_sharded_stage(STAGE_HONEYPOT, buckets)
        merged = merge_honeypot_reports(outcomes, [bot.name for bot in sample])
        return merged, outcomes

    # -- orchestration ----------------------------------------------------------

    def run(self) -> PipelineResult:
        """Run every enabled stage and aggregate the paper's statistics.

        Stages degrade instead of crashing (``config.degrade_on_faults``):
        per-bot faults skip the bot, stage-level faults mark the stage
        ``FAILED``, and everything lost is accounted in ``fault_ledger``.
        With ``config.checkpoint_path``, the pipeline snapshots after every
        stage and a re-run resumes from the last completed one.
        """
        started_wall = time.monotonic()
        started_virtual = self.world.clock.now()
        spent_before = self.world.solver.total_spent
        self.metrics = RunMetrics(shard_count=self.config.shards)
        sharded = self.config.shards > 1

        checkpoint: PipelineCheckpoint | None = None
        if self.config.checkpoint_path is not None:
            # Scrub-on-load: verify every artifact (checksums, stage
            # round-trips, spill references) before trusting it.  Anything
            # inconsistent is quarantined and the checkpoint reset, with
            # the detection recorded under the ``storage`` provenance
            # stage — the journal then replays what the snapshot lost.
            checkpoint = RecoveryManager(self.ledger).scrub_pipeline_checkpoint(
                self.config.checkpoint_path
            )
            self.ledger.extend(checkpoint.ledger)
            self.quarantines.extend(checkpoint.quarantines)
            # Re-enter the simulation exactly where the saving run left it
            # (after ``started_virtual``/``spent_before`` were captured, so
            # whole-campaign deltas match an uninterrupted run's).  A
            # salvaged checkpoint carries no world state: stages then re-run
            # from the fresh world, as before world capture existed.
            if checkpoint.world_state:
                self._restore_all_worlds(checkpoint.world_state)
        self._main_journal()

        status: dict[str, str] = {}

        # Stage 1: data collection.
        if checkpoint is not None and checkpoint.has_stage(STAGE_CRAWL):
            crawl, stats = checkpoint.restore_crawl()
            result = PipelineResult(crawl=crawl, scrape_stats=stats)
            status[STAGE_CRAWL] = StageStatus.RESUMED.value
            self._restore_stage_metrics(checkpoint, STAGE_CRAWL)
        else:
            timer = _StageTimer(self, STAGE_CRAWL)
            scraper, crawl = self.collect()
            result = PipelineResult(crawl=crawl, scrape_stats=scraper.stats)
            status[STAGE_CRAWL] = self._stage_outcome(STAGE_CRAWL)
            entry = timer.finish(bots_processed=len(crawl.bots))
            entry.outcome = status[STAGE_CRAWL]
            self.metrics.record(entry)
            if self.config.max_pages is None:
                self._enforce_accounting(STAGE_CRAWL, len(self.world.ecosystem.bots), status[STAGE_CRAWL])
            if checkpoint is not None:
                checkpoint.store_crawl(crawl, scraper.stats)
                self._save_checkpoint(checkpoint, status)
        active = crawl.with_valid_permissions()

        result.permission_distribution = PermissionDistribution.from_bots(crawl.bots)
        result.developer_distribution = DeveloperDistribution.from_bots(crawl.bots)
        from repro.analysis.risk import RiskSummary

        result.risk_summary = RiskSummary.from_bots(crawl.bots)

        # Stage 2: traceability analysis.
        if self.config.run_traceability:
            if checkpoint is not None and checkpoint.has_stage(STAGE_TRACEABILITY):
                result.traceability_results, result.validation = checkpoint.restore_traceability()
                status[STAGE_TRACEABILITY] = StageStatus.RESUMED.value
                self._restore_stage_metrics(checkpoint, STAGE_TRACEABILITY)
            else:
                timer = _StageTimer(self, STAGE_TRACEABILITY)
                outcomes: list[ShardOutcome] | None = None
                try:
                    if sharded:
                        result.traceability_results, outcomes = self._sharded_traceability(active)
                    else:
                        result.traceability_results = self.analyze_traceability(
                            active,
                            on_fault=self._degrade_sink(STAGE_TRACEABILITY),
                            supervisor=self._supervisor(STAGE_TRACEABILITY),
                            journal=self._main_journal(),
                        )
                    result.validation = self._validate_traceability()
                    status[STAGE_TRACEABILITY] = self._stage_outcome(STAGE_TRACEABILITY)
                except (WebDriverException, NetworkError) as error:
                    if not self.config.degrade_on_faults:
                        raise
                    self._record_stage_failure(STAGE_TRACEABILITY, error)
                    status[STAGE_TRACEABILITY] = StageStatus.FAILED.value
                entry = timer.finish(bots_processed=len(result.traceability_results), outcomes=outcomes)
                entry.outcome = status[STAGE_TRACEABILITY]
                self.metrics.record(entry)
                self._enforce_accounting(STAGE_TRACEABILITY, len(active), status[STAGE_TRACEABILITY])
                if checkpoint is not None and status[STAGE_TRACEABILITY] != StageStatus.FAILED.value:
                    checkpoint.store_traceability(result.traceability_results, result.validation)
                    self._save_checkpoint(checkpoint, status)
            if status[STAGE_TRACEABILITY] != StageStatus.FAILED.value:
                # A dead stage stays None — an all-zero summary would read
                # as "nothing disclosed" instead of "nothing measured".
                result.traceability_summary = TraceabilitySummary.from_results(result.traceability_results)
        else:
            status[STAGE_TRACEABILITY] = StageStatus.SKIPPED.value

        # Stage 3: code analysis.
        if self.config.run_code_analysis:
            if checkpoint is not None and checkpoint.has_stage(STAGE_CODE):
                result.repo_analyses = checkpoint.restore_code()
                status[STAGE_CODE] = StageStatus.RESUMED.value
                self._restore_stage_metrics(checkpoint, STAGE_CODE)
            else:
                timer = _StageTimer(self, STAGE_CODE)
                outcomes = None
                try:
                    if sharded:
                        result.repo_analyses, outcomes = self._sharded_code(active)
                    else:
                        result.repo_analyses = self.analyze_code(
                            active,
                            on_fault=self._degrade_sink(STAGE_CODE),
                            supervisor=self._supervisor(STAGE_CODE),
                            journal=self._main_journal(),
                        )
                    status[STAGE_CODE] = self._stage_outcome(STAGE_CODE)
                except (WebDriverException, NetworkError) as error:
                    if not self.config.degrade_on_faults:
                        raise
                    self._record_stage_failure(STAGE_CODE, error)
                    status[STAGE_CODE] = StageStatus.FAILED.value
                entry = timer.finish(bots_processed=len(result.repo_analyses), outcomes=outcomes)
                entry.outcome = status[STAGE_CODE]
                self.metrics.record(entry)
                self._enforce_accounting(
                    STAGE_CODE, sum(1 for bot in active if bot.github_url), status[STAGE_CODE]
                )
                if checkpoint is not None and status[STAGE_CODE] != StageStatus.FAILED.value:
                    checkpoint.store_code(result.repo_analyses)
                    self._save_checkpoint(checkpoint, status)
            if status[STAGE_CODE] != StageStatus.FAILED.value:
                result.code_summary = CodeAnalysisSummary.from_analyses(
                    active_bots=len(active),
                    github_links=sum(1 for bot in active if bot.github_url),
                    analyses=result.repo_analyses,
                )
        else:
            status[STAGE_CODE] = StageStatus.SKIPPED.value

        # Stage 4: dynamic analysis.
        if self.config.run_honeypot:
            if checkpoint is not None and checkpoint.has_stage(STAGE_HONEYPOT):
                result.honeypot = checkpoint.restore_honeypot()
                status[STAGE_HONEYPOT] = StageStatus.RESUMED.value
                self._restore_stage_metrics(checkpoint, STAGE_HONEYPOT)
            else:
                replay = self._replay_honeypot_stage()
                if replay is not None:
                    result.honeypot, entry, status[STAGE_HONEYPOT] = replay
                    self.metrics.record(entry)
                    if (
                        checkpoint is not None
                        and status[STAGE_HONEYPOT] != StageStatus.FAILED.value
                        and result.honeypot is not None
                    ):
                        checkpoint.store_honeypot(result.honeypot)
                        self._save_checkpoint(checkpoint, status)
                else:
                    timer = _StageTimer(self, STAGE_HONEYPOT)
                    outcomes = None
                    sample = self.world.ecosystem.top_voted(self.config.honeypot_sample_size)
                    faults_mark = self.ledger.mark()
                    quarantines_mark = self.quarantines.mark()
                    try:
                        if sharded:
                            result.honeypot, outcomes = self._sharded_honeypot()
                        else:
                            result.honeypot = self.run_honeypot(
                                on_fault=self._degrade_sink(STAGE_HONEYPOT),
                                sample=sample,
                                journal=self._main_journal(),
                            )
                        status[STAGE_HONEYPOT] = self._stage_outcome(STAGE_HONEYPOT)
                    except (WebDriverException, NetworkError) as error:
                        if not self.config.degrade_on_faults:
                            raise
                        self._record_stage_failure(STAGE_HONEYPOT, error)
                        status[STAGE_HONEYPOT] = StageStatus.FAILED.value
                    entry = timer.finish(
                        bots_processed=result.honeypot.bots_processed if result.honeypot is not None else 0,
                        outcomes=outcomes,
                    )
                    entry.outcome = status[STAGE_HONEYPOT]
                    self.metrics.record(entry)
                    self._enforce_accounting(STAGE_HONEYPOT, len(sample), status[STAGE_HONEYPOT])
                    journal = self._main_journal()
                    if (
                        journal is not None
                        and status[STAGE_HONEYPOT] != StageStatus.FAILED.value
                        and result.honeypot is not None
                    ):
                        # Per-bot honeypot records are forensic only; this
                        # record is what a crash between here and the
                        # checkpoint save replays: the merged report, the
                        # post-stage world, and the stage's fault deltas.
                        journal.append(
                            STAGE_HONEYPOT,
                            "stage_complete",
                            {
                                "result": {
                                    "report": honeypot_to_dict(result.honeypot),
                                    "metrics": entry.to_dict(),
                                    "status": status[STAGE_HONEYPOT],
                                },
                                "world": self._capture_all_worlds(),
                                "faults": [
                                    record.to_dict() for record in self.ledger.records_since(faults_mark)
                                ],
                                "quarantines": [
                                    record.to_dict()
                                    for record in self.quarantines.records_since(quarantines_mark)
                                ],
                            },
                        )
                        crashpoint("honeypot.before_save")
                    if (
                        checkpoint is not None
                        and status[STAGE_HONEYPOT] != StageStatus.FAILED.value
                        and result.honeypot is not None
                    ):
                        checkpoint.store_honeypot(result.honeypot)
                        self._save_checkpoint(checkpoint, status)
        else:
            status[STAGE_HONEYPOT] = StageStatus.SKIPPED.value

        crashpoint("run.before_result")
        result.fault_ledger = self.ledger
        result.quarantines = self.quarantines
        result.stage_status = status
        self._aggregate_journal_stats()
        result.metrics = self.metrics
        result.wall_seconds = time.monotonic() - started_wall
        result.virtual_seconds = self.world.clock.now() - started_virtual
        # Captcha dollars merge as a *sum*: the main solver's delta plus
        # everything the per-shard solvers spent.  When a resumed run never
        # rebuilt the shard worlds, their spend still lives in the stashed
        # snapshots' solver histories.
        result.captcha_dollars = self.world.solver.total_spent - spent_before
        if self._shard_executor is not None:
            result.captcha_dollars += self._shard_executor.captcha_dollars()
        elif self._shard_world_states:
            result.captcha_dollars += sum(
                solver_history_dollars(state.get("solver", {}))
                for state in self._shard_world_states.values()
            )
        self._close_journals()
        self._close_parallel_runner()
        return result

    def _stage_outcome(self, stage: str) -> str:
        return (StageStatus.DEGRADED if self.ledger.count(stage) else StageStatus.COMPLETED).value

    def _enforce_accounting(self, stage: str, population: int, status: str) -> None:
        """Close the books on a freshly-executed stage.

        Every bot the stage was given must be processed, skipped (ledger)
        or quarantined — nothing silently vanishes.  Only meaningful when
        faults degrade (otherwise they raise before reaching here) and the
        stage actually produced output.
        """
        if status == StageStatus.FAILED.value or not self.config.degrade_on_faults:
            return
        entry = self.metrics.stage(stage)
        if entry is None:
            return
        verify_accounting(stage, population, entry.bots_processed, entry.bots_skipped, entry.bots_quarantined)

    def _record_stage_failure(self, stage: str, error: BaseException) -> None:
        self.ledger.record(
            stage, "<pipeline>", error, self.world.clock.now(), detail="stage aborted; output incomplete"
        )

    def _replay_honeypot_stage(self) -> tuple["HoneypotReport", StageMetrics, str] | None:
        """Replay a journaled ``stage_complete`` honeypot record, if present.

        The honeypot's per-bot records carry no replayable state (platform
        internals replay all-or-nothing), so a partial set — a crash
        mid-campaign — is discarded and counted, and the stage re-runs from
        its restored start state.  Only a ``stage_complete`` record (a crash
        in the compute-to-checkpoint-save window) short-circuits execution.
        """
        journal = self._main_journal()
        if journal is None:
            return None
        pending = journal.pending(STAGE_HONEYPOT)
        if not pending:
            return None
        marker: tuple[int, Any] | None = None
        for position, record in enumerate(pending):
            if record.key == "stage_complete":
                marker = (position, record)
        if marker is None:
            journal.stats.discarded += len(pending)
            record_resume_provenance(
                self.ledger,
                f"stage honeypot: discarded {len(pending)} partial per-bot record(s); stage re-runs",
            )
            return None
        position, record = marker
        journal.stats.replayed += position + 1
        body = record.body
        for payload in body.get("faults", ()):
            self.ledger.records.append(FaultRecord.from_dict(payload))
        for payload in body.get("quarantines", ()):
            self.quarantines.records.append(QuarantineRecord.from_dict(payload))
        self._restore_all_worlds(body.get("world", {}))
        stored = body["result"]
        return (
            honeypot_from_dict(stored["report"]),
            StageMetrics.from_dict(stored["metrics"]),
            stored["status"],
        )

    def _save_checkpoint(self, checkpoint: PipelineCheckpoint, status: dict[str, str]) -> None:
        checkpoint.stage_status = dict(status)
        checkpoint.ledger = self.ledger
        checkpoint.quarantines = self.quarantines
        checkpoint.metrics = {stage: entry.to_dict() for stage, entry in self.metrics.stages.items()}
        checkpoint.world_state = self._capture_all_worlds()
        assert self.config.checkpoint_path is not None
        if self.config.stream:
            # Streamed checkpoints record spill references + counts (a
            # stream cursor) instead of materialized populations; a kill
            # here must leave a checkpoint/spill pair a resume can trust.
            crashpoint("stream.cursor_save")
        checkpoint.save(self.config.checkpoint_path)
        crashpoint("pipeline.after_stage")

    def _restore_stage_metrics(self, checkpoint: PipelineCheckpoint, stage: str) -> None:
        """Carry a completed stage's metrics into this (resumed) run."""
        payload = checkpoint.metrics.get(stage)
        if payload is None:
            return
        entry = StageMetrics.from_dict(payload)
        entry.resumed = True
        self.metrics.record(entry)

    def _validate_traceability(self):
        """The paper's 100-policy manual-review validation."""
        validator = ManualReviewValidator(self.traceability_analyzer, seed=self.config.seed + 4)
        bots = self.world.ecosystem.bots
        if self.config.stream:
            # Two passes over the stream — count eligible, then collect the
            # sampled ordinals — instead of one materialized list; the
            # report is byte-identical (sampling is by index either way).
            count = sum(1 for bot in bots if bot.policy.present and bot.policy.link_valid)
            entries = (
                (bot.name, bot.policy, bot.policy_text)
                for bot in bots
                if bot.policy.present and bot.policy.link_valid
            )
            return validator.validate_stream(
                entries, count, sample_size=self.config.validation_sample_size
            )
        policies = [
            (bot.name, bot.policy, bot.policy_text)
            for bot in self.world.ecosystem.bots
            if bot.policy.present and bot.policy.link_valid
        ]
        return validator.validate(policies, sample_size=self.config.validation_sample_size)
