"""The assessment pipeline: Figure 1 end to end.

``AssessmentPipeline`` first builds (or accepts) a *world* — the virtual
internet with the listing site, consent pages, bot websites, the GitHub
stand-in, and the messaging platform itself — then runs the paper's four
stages against it:

1. **Data collection** — crawl the listing site, resolve invite permissions.
2. **Traceability analysis** — hunt privacy policies, classify disclosure.
3. **Code analysis** — crawl GitHub links, detect permission-check APIs.
4. **Dynamic analysis** — honeypot campaign over the most-voted bots.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.analysis.code_stats import CodeAnalysisSummary
from repro.analysis.developer_stats import DeveloperDistribution
from repro.analysis.permission_stats import PermissionDistribution
from repro.analysis.traceability_stats import TraceabilitySummary
from repro.botstore.host import build_store_host
from repro.codeanalysis.analyzer import CodeAnalyzer
from repro.core.checkpoint import (
    STAGE_CODE,
    STAGE_CRAWL,
    STAGE_HONEYPOT,
    STAGE_TRACEABILITY,
    PipelineCheckpoint,
)
from repro.core.config import PipelineConfig
from repro.core.resilience import CircuitBreakerRegistry, FaultLedger, RetryBudget, StageStatus
from repro.core.results import PipelineResult
from repro.discordsim.platform import DiscordPlatform
from repro.ecosystem.generator import Ecosystem, EcosystemConfig, generate_ecosystem
from repro.honeypot.experiment import HoneypotExperiment
from repro.scraper.github import GitHubScraper
from repro.scraper.topgg import ScrapedBot, TopGGScraper
from repro.scraper.website import WebsiteScraper
from repro.sites.botwebsites import BotWebsiteBuilder
from repro.sites.discordweb import DiscordWebsite
from repro.sites.github import GitHubSite
from repro.traceability.analyzer import TraceabilityAnalyzer
from repro.traceability.validation import ManualReviewValidator
from repro.web.browser import WebDriverException
from repro.web.captcha import TwoCaptchaClient
from repro.web.http import Url
from repro.web.network import NetworkError, VirtualClock, VirtualInternet

#: Degradation callback handed to stages: ``(host, error, bots_skipped, detail)``.
StageFaultSink = Callable[[str, BaseException, int, str], None]


@dataclass
class PipelineWorld:
    """Everything the pipeline measures: the simulated internet + platform."""

    ecosystem: Ecosystem
    clock: VirtualClock
    internet: VirtualInternet
    platform: DiscordPlatform
    solver: TwoCaptchaClient

    @classmethod
    def build(cls, config: PipelineConfig) -> "PipelineWorld":
        ecosystem = generate_ecosystem(
            EcosystemConfig(
                n_bots=config.n_bots,
                seed=config.seed,
                targets=config.targets,
                honeypot_window=config.honeypot_sample_size,
            )
        )
        clock = VirtualClock()
        internet = VirtualInternet(clock, seed=config.seed)
        platform = DiscordPlatform(clock, captcha_seed=config.seed + 1)
        build_store_host(ecosystem, internet, config.defenses)
        DiscordWebsite(ecosystem).register(internet)
        GitHubSite(ecosystem).register(internet)
        BotWebsiteBuilder(ecosystem).register(internet)
        from repro.sites.reddit import RedditSite

        RedditSite(seed=config.seed + 5).register(internet)
        solver = TwoCaptchaClient(clock, balance=config.captcha_balance, seed=config.seed + 2)
        if config.chaos_profile is not None:
            from repro.web.chaos import FaultSchedule

            internet.install_chaos(FaultSchedule(config.chaos_profile, seed=config.chaos_seed))
        return cls(ecosystem=ecosystem, clock=clock, internet=internet, platform=platform, solver=solver)


class AssessmentPipeline:
    """Run the full methodology against a world."""

    def __init__(self, config: PipelineConfig | None = None, world: PipelineWorld | None = None) -> None:
        self.config = config or PipelineConfig()
        self.world = world or PipelineWorld.build(self.config)
        self.traceability_analyzer = TraceabilityAnalyzer()
        self.code_analyzer = CodeAnalyzer(ignore_comments=self.config.ignore_comments_in_code_analysis)
        #: Per-host circuit breakers shared by every scraper in this run.
        self.breakers = CircuitBreakerRegistry(
            self.world.clock,
            failure_threshold=self.config.circuit_failure_threshold,
            recovery_time=self.config.circuit_recovery_time,
        )
        #: Structured account of every fault the run absorbed.
        self.ledger = FaultLedger()

    # -- resilience helpers -------------------------------------------------

    def _stage_budget(self) -> RetryBudget:
        return RetryBudget(self.config.stage_retry_budget)

    def _stage_sink(self, stage: str) -> StageFaultSink:
        def sink(host: str, error: BaseException, bots_skipped: int, detail: str) -> None:
            self.ledger.record(stage, host, error, self.world.clock.now(), bots_skipped=bots_skipped, detail=detail)

        return sink

    def _degrade_sink(self, stage: str) -> StageFaultSink | None:
        return self._stage_sink(stage) if self.config.degrade_on_faults else None

    @staticmethod
    def _host_of(url: str | None) -> str:
        if not url:
            return "<unknown>"
        try:
            return Url.parse(url).host or "<unknown>"
        except ValueError:
            return "<unknown>"

    # -- stages ------------------------------------------------------------

    def collect(self) -> tuple[TopGGScraper, "CrawlResult"]:
        """Stage 1: crawl the listing site."""
        scraper = TopGGScraper(
            self.world.internet,
            solver=self.world.solver,
            breakers=self.breakers,
            retry_budget=self._stage_budget(),
        )
        sink = self._degrade_sink(STAGE_CRAWL)
        crawl = scraper.crawl(
            max_pages=self.config.max_pages,
            resolve_permissions=self.config.resolve_permissions,
            on_fault=sink,
        )
        if sink is not None and self.config.max_pages is None:
            # Reconcile: an abandoned pagination (or an unparseable list
            # page) loses listings nobody counted bot-by-bot.  The pipeline
            # knows the population, so the ledger accounts the remainder —
            # collected + skipped always equals the expected population.
            expected = len(self.world.ecosystem.bots)
            missing = expected - len(crawl.bots) - self.ledger.bots_skipped(STAGE_CRAWL)
            if missing > 0:
                from repro.scraper.topgg import TOPGG_HOST

                self.ledger.record(
                    STAGE_CRAWL,
                    TOPGG_HOST,
                    "PaginationAbandoned",
                    self.world.clock.now(),
                    bots_skipped=missing,
                    detail=f"{missing} listings never reached",
                )
        return scraper, crawl

    def analyze_traceability(self, active_bots: list[ScrapedBot], on_fault: StageFaultSink | None = None) -> list:
        """Stage 2: website crawl + keyword traceability per active bot.

        With ``on_fault``, a bot whose website dies at the transport level
        (circuit open, connection dropped) is skipped and reported instead
        of crashing the stage; unreachable-but-resolvable websites remain a
        *classification* outcome (broken traceability), not a fault.
        """
        website_scraper = WebsiteScraper(
            self.world.internet,
            solver=self.world.solver,
            client_id="policy-scraper",
            breakers=self.breakers,
            retry_budget=self._stage_budget(),
        )
        results = []
        for bot in active_bots:
            if bot.website_url:
                try:
                    fetch = website_scraper.fetch_policy(bot.website_url)
                except (WebDriverException, NetworkError) as error:
                    if on_fault is None:
                        raise
                    on_fault(self._host_of(bot.website_url), error, 1, f"traceability skipped for {bot.name}")
                    continue
            else:
                from repro.scraper.website import PolicyFetchResult

                fetch = PolicyFetchResult(False, False, False)
            results.append(
                self.traceability_analyzer.analyze(
                    bot_name=bot.name,
                    permissions=bot.permissions,
                    has_website=fetch.website_reachable,
                    has_policy_link=fetch.policy_link_found,
                    policy_page_valid=fetch.policy_page_valid,
                    policy_text=fetch.policy_text,
                )
            )
        return results

    def analyze_code(self, active_bots: list[ScrapedBot], on_fault: StageFaultSink | None = None) -> list:
        """Stage 3: GitHub crawl + Table-3 pattern detection."""
        github_scraper = GitHubScraper(
            self.world.internet,
            solver=self.world.solver,
            client_id="repo-scraper",
            breakers=self.breakers,
            retry_budget=self._stage_budget(),
        )
        analyses = []
        for bot in active_bots:
            if not bot.github_url:
                continue
            try:
                fetched = github_scraper.fetch_repo(bot.github_url)
            except (WebDriverException, NetworkError) as error:
                if on_fault is None:
                    raise
                on_fault(self._host_of(bot.github_url), error, 1, f"code analysis skipped for {bot.name}")
                continue
            analyses.append(
                self.code_analyzer.analyze_repo(
                    bot_name=bot.name,
                    files=fetched.files,
                    link_valid=fetched.link_valid,
                    main_language=fetched.main_language,
                )
            )
        return analyses

    def run_honeypot(self, on_fault: StageFaultSink | None = None) -> "HoneypotReport":
        """Stage 4: dynamic analysis over the most-voted sample."""
        experiment = HoneypotExperiment(
            self.world.platform,
            self.world.internet,
            solver=self.world.solver,
            seed=self.config.seed + 3,
        )
        feed_source = None
        if self.config.use_osn_feed:
            from repro.honeypot.osn_source import OsnFeedSource

            try:
                source = OsnFeedSource.scrape(self.world.internet, seed=self.config.seed + 6)
            except (WebDriverException, NetworkError) as error:
                if on_fault is None:
                    raise
                on_fault("reddit.sim", error, 0, "OSN feed unavailable; falling back to generated feed")
                source = None
            if source is not None and len(source):
                feed_source = source.next_message
        sample = self.world.ecosystem.top_voted(self.config.honeypot_sample_size)
        return experiment.run(
            sample,
            personas_per_guild=self.config.personas_per_guild,
            feed_messages=self.config.feed_messages,
            observation_window=self.config.observation_window,
            feed_source=feed_source,
            fault_sink=on_fault,
        )

    # -- orchestration ----------------------------------------------------------

    def run(self) -> PipelineResult:
        """Run every enabled stage and aggregate the paper's statistics.

        Stages degrade instead of crashing (``config.degrade_on_faults``):
        per-bot faults skip the bot, stage-level faults mark the stage
        ``FAILED``, and everything lost is accounted in ``fault_ledger``.
        With ``config.checkpoint_path``, the pipeline snapshots after every
        stage and a re-run resumes from the last completed one.
        """
        started_wall = time.monotonic()
        started_virtual = self.world.clock.now()
        spent_before = self.world.solver.total_spent

        checkpoint: PipelineCheckpoint | None = None
        if self.config.checkpoint_path is not None:
            checkpoint = PipelineCheckpoint.load_or_empty(self.config.checkpoint_path)
            self.ledger.extend(checkpoint.ledger)

        status: dict[str, str] = {}

        # Stage 1: data collection.
        if checkpoint is not None and checkpoint.has_stage(STAGE_CRAWL):
            crawl, stats = checkpoint.restore_crawl()
            result = PipelineResult(crawl=crawl, scrape_stats=stats)
            status[STAGE_CRAWL] = StageStatus.RESUMED.value
        else:
            scraper, crawl = self.collect()
            result = PipelineResult(crawl=crawl, scrape_stats=scraper.stats)
            status[STAGE_CRAWL] = self._stage_outcome(STAGE_CRAWL)
            if checkpoint is not None:
                checkpoint.store_crawl(crawl, scraper.stats)
                self._save_checkpoint(checkpoint, status)
        active = crawl.with_valid_permissions()

        result.permission_distribution = PermissionDistribution.from_bots(crawl.bots)
        result.developer_distribution = DeveloperDistribution.from_bots(crawl.bots)
        from repro.analysis.risk import RiskSummary

        result.risk_summary = RiskSummary.from_bots(crawl.bots)

        # Stage 2: traceability analysis.
        if self.config.run_traceability:
            if checkpoint is not None and checkpoint.has_stage(STAGE_TRACEABILITY):
                result.traceability_results, result.validation = checkpoint.restore_traceability()
                status[STAGE_TRACEABILITY] = StageStatus.RESUMED.value
            else:
                try:
                    result.traceability_results = self.analyze_traceability(
                        active, on_fault=self._degrade_sink(STAGE_TRACEABILITY)
                    )
                    result.validation = self._validate_traceability()
                    status[STAGE_TRACEABILITY] = self._stage_outcome(STAGE_TRACEABILITY)
                except (WebDriverException, NetworkError) as error:
                    if not self.config.degrade_on_faults:
                        raise
                    self._record_stage_failure(STAGE_TRACEABILITY, error)
                    status[STAGE_TRACEABILITY] = StageStatus.FAILED.value
                if checkpoint is not None and status[STAGE_TRACEABILITY] != StageStatus.FAILED.value:
                    checkpoint.store_traceability(result.traceability_results, result.validation)
                    self._save_checkpoint(checkpoint, status)
            result.traceability_summary = TraceabilitySummary.from_results(result.traceability_results)
        else:
            status[STAGE_TRACEABILITY] = StageStatus.SKIPPED.value

        # Stage 3: code analysis.
        if self.config.run_code_analysis:
            if checkpoint is not None and checkpoint.has_stage(STAGE_CODE):
                result.repo_analyses = checkpoint.restore_code()
                status[STAGE_CODE] = StageStatus.RESUMED.value
            else:
                try:
                    result.repo_analyses = self.analyze_code(active, on_fault=self._degrade_sink(STAGE_CODE))
                    status[STAGE_CODE] = self._stage_outcome(STAGE_CODE)
                except (WebDriverException, NetworkError) as error:
                    if not self.config.degrade_on_faults:
                        raise
                    self._record_stage_failure(STAGE_CODE, error)
                    status[STAGE_CODE] = StageStatus.FAILED.value
                if checkpoint is not None and status[STAGE_CODE] != StageStatus.FAILED.value:
                    checkpoint.store_code(result.repo_analyses)
                    self._save_checkpoint(checkpoint, status)
            result.code_summary = CodeAnalysisSummary.from_analyses(
                active_bots=len(active),
                github_links=sum(1 for bot in active if bot.github_url),
                analyses=result.repo_analyses,
            )
        else:
            status[STAGE_CODE] = StageStatus.SKIPPED.value

        # Stage 4: dynamic analysis.
        if self.config.run_honeypot:
            if checkpoint is not None and checkpoint.has_stage(STAGE_HONEYPOT):
                result.honeypot = checkpoint.restore_honeypot()
                status[STAGE_HONEYPOT] = StageStatus.RESUMED.value
            else:
                try:
                    result.honeypot = self.run_honeypot(on_fault=self._degrade_sink(STAGE_HONEYPOT))
                    status[STAGE_HONEYPOT] = self._stage_outcome(STAGE_HONEYPOT)
                except (WebDriverException, NetworkError) as error:
                    if not self.config.degrade_on_faults:
                        raise
                    self._record_stage_failure(STAGE_HONEYPOT, error)
                    status[STAGE_HONEYPOT] = StageStatus.FAILED.value
                if checkpoint is not None and status[STAGE_HONEYPOT] != StageStatus.FAILED.value and result.honeypot is not None:
                    checkpoint.store_honeypot(result.honeypot)
                    self._save_checkpoint(checkpoint, status)
        else:
            status[STAGE_HONEYPOT] = StageStatus.SKIPPED.value

        result.fault_ledger = self.ledger
        result.stage_status = status
        result.wall_seconds = time.monotonic() - started_wall
        result.virtual_seconds = self.world.clock.now() - started_virtual
        result.captcha_dollars = self.world.solver.total_spent - spent_before
        return result

    def _stage_outcome(self, stage: str) -> str:
        return (StageStatus.DEGRADED if self.ledger.count(stage) else StageStatus.COMPLETED).value

    def _record_stage_failure(self, stage: str, error: BaseException) -> None:
        self.ledger.record(
            stage, "<pipeline>", error, self.world.clock.now(), detail="stage aborted; output incomplete"
        )

    def _save_checkpoint(self, checkpoint: PipelineCheckpoint, status: dict[str, str]) -> None:
        checkpoint.stage_status = dict(status)
        checkpoint.ledger = self.ledger
        assert self.config.checkpoint_path is not None
        checkpoint.save(self.config.checkpoint_path)

    def _validate_traceability(self):
        """The paper's 100-policy manual-review validation."""
        validator = ManualReviewValidator(self.traceability_analyzer, seed=self.config.seed + 4)
        policies = [
            (bot.name, bot.policy, bot.policy_text)
            for bot in self.world.ecosystem.bots
            if bot.policy.present and bot.policy.link_valid
        ]
        return validator.validate(policies, sample_size=self.config.validation_sample_size)
