"""Process-pool execution for sharded pipeline stages.

Threads gave the sharded stages isolation but not speed: the work is pure
Python, so the GIL serialises it and ``shards=4`` runs no faster than
``shards=1``.  This module moves shard buckets into worker *processes*
while keeping the determinism contract intact:

* Each worker rebuilds its shard world from the shared seed (ecosystem
  generation and shard-world construction are pure functions of the
  config), then restores the parent's captured world snapshot — the same
  exact-restore machinery the crash-recovery matrix proves byte-faithful.
* The worker runs the shared :meth:`AssessmentPipeline.run_shard_bucket`
  — the identical code path the thread mode runs — and returns a plain
  JSON-able payload: serialized stage values, fault/quarantine deltas,
  the post-stage world snapshot, clock horizon and journal counters.
* The parent restores each returned snapshot into its own shard world and
  performs the unchanged order-fixed merge, so ``shards=N`` output is
  byte-identical whether buckets ran on threads or processes.

Workers cache the rebuilt pipeline and shard worlds between stages (keyed
by the config's repr), so the ecosystem is generated once per worker, not
once per stage.  A shard world is dropped from the cache after a honeypot
task: the campaign dirties the shard's platform, and platform internals
are deliberately outside the snapshot contract (honeypot state replays
all-or-nothing).
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any

from repro.core.checkpoint import (
    STAGE_CODE,
    STAGE_HONEYPOT,
    STAGE_TRACEABILITY,
    honeypot_from_dict,
    honeypot_to_dict,
    repo_analysis_from_dict,
    repo_analysis_to_dict,
    traceability_from_dict,
    traceability_to_dict,
)
from repro.core.config import PipelineConfig
from repro.core.journal import WriteAheadJournal, capture_world_state, restore_world_state
from repro.core.resilience import CircuitBreakerRegistry
from repro.core.sharding import ShardWorld, partition
from repro.scraper.topgg import ScrapedBot


@dataclass
class ShardTaskSpec:
    """Everything one worker process needs to run one shard's bucket.

    ``config`` must arrive stripped of checkpoint/journal paths and with
    ``parallel`` off — the child owns exactly one shard journal (named by
    ``journal_path``) and must never recurse into its own pool.  ``bots``
    is the pickled bucket for stages 2–3; the honeypot passes ``None`` and
    the child recomputes its bucket from the deterministic sample order,
    because ecosystem bot profiles are not part of the pickling contract.
    """

    stage: str
    index: int
    start_time: float
    config: PipelineConfig
    bots: list[ScrapedBot] | None
    world_state: dict
    journal_path: str | None


def encode_stage_value(stage: str, value: Any) -> Any:
    """Serialize a stage's product with the checkpoint codecs (exact round-trip)."""
    if stage == STAGE_TRACEABILITY:
        return [traceability_to_dict(item) for item in value]
    if stage == STAGE_CODE:
        return [repo_analysis_to_dict(item) for item in value]
    if stage == STAGE_HONEYPOT:
        return honeypot_to_dict(value)
    raise ValueError(f"stage {stage!r} is not sharded")


def decode_stage_value(stage: str, payload: Any) -> Any:
    if stage == STAGE_TRACEABILITY:
        return [traceability_from_dict(item) for item in payload]
    if stage == STAGE_CODE:
        return [repo_analysis_from_dict(item) for item in payload]
    if stage == STAGE_HONEYPOT:
        return honeypot_from_dict(payload)
    raise ValueError(f"stage {stage!r} is not sharded")


#: Per-worker-process caches (module globals live once per worker).  The
#: pipeline cache holds the rebuilt ecosystem + analyzers for the current
#: run's config; the world cache holds shard worlds across that run's
#: stages.  A new config key flushes both (a pool only ever serves one
#: run at a time, so this is a safety valve, not an LRU).
_WORKER_PIPELINES: dict[str, Any] = {}
_WORKER_WORLDS: dict[tuple[str, int], ShardWorld] = {}


def run_shard_task(spec: ShardTaskSpec) -> dict:
    """Run one shard bucket in this worker process; return a JSON-able outcome.

    Runs in the pool worker, never in the parent.  The returned payload
    carries everything the parent needs to reconstruct a
    :class:`~repro.core.sharding.ShardOutcome` and bring its own shard
    world up to date: the serialized value, fault/quarantine deltas, wall
    and virtual durations, exchange count, journal counters and the
    post-stage world snapshot.
    """
    import time

    from repro.core.pipeline import AssessmentPipeline, PipelineWorld

    config = spec.config
    key = repr(config)
    pipeline = _WORKER_PIPELINES.get(key)
    if pipeline is None:
        _WORKER_PIPELINES.clear()
        _WORKER_WORLDS.clear()
        pipeline = AssessmentPipeline(config=config)
        _WORKER_PIPELINES[key] = pipeline
    world_key = (key, spec.index)
    shard = _WORKER_WORLDS.get(world_key)
    if shard is None:
        view = PipelineWorld.build_shard(config, pipeline.world.ecosystem, spec.index, spec.start_time)
        shard = ShardWorld(
            index=spec.index,
            clock=view.clock,
            internet=view.internet,
            platform=view.platform,
            solver=view.solver,
            breakers=CircuitBreakerRegistry(
                view.clock,
                failure_threshold=config.circuit_failure_threshold,
                recovery_time=config.circuit_recovery_time,
            ),
        )
        _WORKER_WORLDS[world_key] = shard
    restore_world_state(shard.clock, shard.internet, shard.solver, shard.breakers, spec.world_state)

    journal = None
    journal_discard = None
    if spec.journal_path is not None:
        journal = WriteAheadJournal(spec.journal_path)
        if journal.discard_detail:
            journal_discard = f"{spec.journal_path.rsplit('/', 1)[-1]}: {journal.discard_detail}"

    bots: list[Any]
    if spec.stage == STAGE_HONEYPOT:
        sample = pipeline.world.ecosystem.top_voted(config.honeypot_sample_size)
        bots = partition(sample, config.shards, key=lambda bot: bot.client_id)[spec.index]
    else:
        bots = list(spec.bots or [])

    wall_start = time.monotonic()
    virtual_start = shard.clock.now()
    exchanges_start = shard.internet.exchanges_total
    faults_mark = shard.ledger.mark()
    quarantines_mark = shard.quarantines.mark()
    try:
        value = pipeline.run_shard_bucket(spec.stage, shard, bots, journal)
    finally:
        if journal is not None:
            journal.close()
        if spec.stage == STAGE_HONEYPOT:
            # The campaign dirtied the platform; a reused world would replay
            # honeypot state the snapshot contract deliberately excludes.
            _WORKER_WORLDS.pop(world_key, None)
    return {
        "index": spec.index,
        "value": encode_stage_value(spec.stage, value),
        "wall_seconds": time.monotonic() - wall_start,
        "virtual_seconds": shard.clock.now() - virtual_start,
        "exchanges": shard.internet.exchanges_total - exchanges_start,
        "faults": [record.to_dict() for record in shard.ledger.records_since(faults_mark)],
        "quarantines": [record.to_dict() for record in shard.quarantines.records_since(quarantines_mark)],
        "world": capture_world_state(shard.clock, shard.internet, shard.solver, shard.breakers),
        "journal_stats": journal.stats.to_dict() if journal is not None else None,
        "journal_discard": journal_discard,
    }


class ProcessShardRunner:
    """A lazily-started process pool that runs :class:`ShardTaskSpec` batches.

    ``fork`` is preferred where available: workers inherit the parent's
    imported modules and start in milliseconds; ``spawn`` works too (every
    spec is self-contained) but pays an interpreter boot per worker.  One
    runner lives per pipeline run and is closed with it.
    """

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork" if "fork" in methods else None)
        self._pool = ProcessPoolExecutor(max_workers=max_workers, mp_context=context)

    def run(self, specs: list[ShardTaskSpec]) -> list[dict]:
        """Run all specs concurrently; results return in spec order."""
        futures = [self._pool.submit(run_shard_task, spec) for spec in specs]
        return [future.result() for future in futures]

    def close(self) -> None:
        self._pool.shutdown(wait=True)
