"""Full-pipeline checkpointing: stage-granular snapshot and resume.

Generalises the crawl-only :mod:`repro.scraper.checkpoint` to the whole
assessment: after every completed stage (crawl, traceability, code,
honeypot) the pipeline snapshots that stage's raw output plus the fault
ledger so far.  A killed run resumes from the last completed stage instead
of re-crawling the world; aggregates are recomputed from the restored raw
outputs, so a resumed run reports the same statistics as an uninterrupted
one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.codeanalysis.analyzer import RepoAnalysis
from repro.codeanalysis.patterns import PatternHit
from repro.core.resilience import FaultLedger
from repro.honeypot.console import TriggerRecord
from repro.honeypot.experiment import BotTestOutcome, HoneypotReport
from repro.honeypot.tokens import TokenKind
from repro.scraper.base import ScrapeStats
from repro.scraper.checkpoint import scraped_bot_from_dict, scraped_bot_to_dict
from repro.scraper.topgg import CrawlResult
from repro.traceability.analyzer import TraceabilityClass, TraceabilityResult
from repro.traceability.validation import ValidationCase, ValidationReport

PIPELINE_CHECKPOINT_VERSION = 1

#: Canonical stage names, in execution order.
STAGE_CRAWL = "crawl"
STAGE_TRACEABILITY = "traceability"
STAGE_CODE = "code"
STAGE_HONEYPOT = "honeypot"
STAGES = (STAGE_CRAWL, STAGE_TRACEABILITY, STAGE_CODE, STAGE_HONEYPOT)


# -- per-type serializers ----------------------------------------------------


def _scrape_stats_to_dict(stats: ScrapeStats) -> dict:
    return dict(vars(stats))


def _scrape_stats_from_dict(payload: dict) -> ScrapeStats:
    stats = ScrapeStats()
    for key, value in payload.items():
        if hasattr(stats, key):
            setattr(stats, key, value)
    return stats


def _traceability_to_dict(result: TraceabilityResult) -> dict:
    return {
        "bot_name": result.bot_name,
        "classification": result.classification.value,
        "categories_found": sorted(result.categories_found),
        "has_website": result.has_website,
        "has_policy_link": result.has_policy_link,
        "policy_page_valid": result.policy_page_valid,
        "generic_policy": result.generic_policy,
        "undisclosed_data_permissions": list(result.undisclosed_data_permissions),
        "keyword_evidence": {category: list(words) for category, words in result.keyword_evidence.items()},
    }


def _traceability_from_dict(payload: dict) -> TraceabilityResult:
    return TraceabilityResult(
        bot_name=payload["bot_name"],
        classification=TraceabilityClass(payload["classification"]),
        categories_found=frozenset(payload["categories_found"]),
        has_website=payload["has_website"],
        has_policy_link=payload["has_policy_link"],
        policy_page_valid=payload["policy_page_valid"],
        generic_policy=payload["generic_policy"],
        undisclosed_data_permissions=tuple(payload["undisclosed_data_permissions"]),
        keyword_evidence={category: list(words) for category, words in payload["keyword_evidence"].items()},
    )


def _validation_to_dict(report: ValidationReport) -> dict:
    return {
        "cases": [
            {"bot_name": case.bot_name, "expected": case.expected, "predicted": case.predicted}
            for case in report.cases
        ]
    }


def _validation_from_dict(payload: dict) -> ValidationReport:
    return ValidationReport(
        cases=[
            ValidationCase(bot_name=entry["bot_name"], expected=entry["expected"], predicted=entry["predicted"])
            for entry in payload["cases"]
        ]
    )


def _repo_analysis_to_dict(analysis: RepoAnalysis) -> dict:
    return {
        "bot_name": analysis.bot_name,
        "link_valid": analysis.link_valid,
        "main_language": analysis.main_language,
        "has_source_code": analysis.has_source_code,
        "performs_check": analysis.performs_check,
        "hits": [
            {"pattern": hit.pattern, "path": hit.path, "line_number": hit.line_number, "line": hit.line}
            for hit in analysis.hits
        ],
    }


def _repo_analysis_from_dict(payload: dict) -> RepoAnalysis:
    return RepoAnalysis(
        bot_name=payload["bot_name"],
        link_valid=payload["link_valid"],
        main_language=payload["main_language"],
        has_source_code=payload["has_source_code"],
        performs_check=payload["performs_check"],
        hits=[
            PatternHit(
                pattern=entry["pattern"],
                path=entry["path"],
                line_number=entry["line_number"],
                line=entry["line"],
            )
            for entry in payload["hits"]
        ],
    )


def _honeypot_to_dict(report: HoneypotReport) -> dict:
    return {
        "outcomes": [
            {
                "bot_name": outcome.bot_name,
                "behavior": outcome.behavior,
                "installed": outcome.installed,
                "tokens_deployed": outcome.tokens_deployed,
                "trigger_kinds": sorted(kind.value for kind in outcome.trigger_kinds),
                "suspicious_messages": list(outcome.suspicious_messages),
                "functionality_explained": outcome.functionality_explained,
            }
            for outcome in report.outcomes
        ],
        "triggers": [
            {
                "time": record.time,
                "token_id": record.token_id,
                "kind": record.kind.value,
                "context": record.context,
                "client_id": record.client_id,
            }
            for record in report.triggers
        ],
        "manual_verifications": report.manual_verifications,
        "install_failures": report.install_failures,
        "captcha_cost": report.captcha_cost,
    }


def _honeypot_from_dict(payload: dict) -> HoneypotReport:
    return HoneypotReport(
        outcomes=[
            BotTestOutcome(
                bot_name=entry["bot_name"],
                behavior=entry["behavior"],
                installed=entry["installed"],
                tokens_deployed=entry["tokens_deployed"],
                trigger_kinds=frozenset(TokenKind(value) for value in entry["trigger_kinds"]),
                suspicious_messages=tuple(entry["suspicious_messages"]),
                functionality_explained=entry["functionality_explained"],
            )
            for entry in payload["outcomes"]
        ],
        triggers=[
            TriggerRecord(
                time=entry["time"],
                token_id=entry["token_id"],
                kind=TokenKind(entry["kind"]),
                context=entry["context"],
                client_id=entry["client_id"],
            )
            for entry in payload["triggers"]
        ],
        manual_verifications=payload["manual_verifications"],
        install_failures=payload["install_failures"],
        captcha_cost=payload["captcha_cost"],
    )


# -- the checkpoint ----------------------------------------------------------


@dataclass
class PipelineCheckpoint:
    """Persistent pipeline progress: one payload per completed stage."""

    stages: dict[str, dict] = field(default_factory=dict)
    stage_status: dict[str, str] = field(default_factory=dict)
    ledger: FaultLedger = field(default_factory=FaultLedger)
    #: Per-stage run metrics (``StageMetrics.to_dict()`` payloads), so a
    #: resumed run reports complete metrics for stages it did not re-run.
    metrics: dict[str, dict] = field(default_factory=dict)

    def has_stage(self, stage: str) -> bool:
        return stage in self.stages

    @property
    def completed_stages(self) -> list[str]:
        return [stage for stage in STAGES if stage in self.stages]

    # -- stage-typed store/restore ---------------------------------------

    def store_crawl(self, crawl: CrawlResult, stats: ScrapeStats) -> None:
        self.stages[STAGE_CRAWL] = {
            "bots": [scraped_bot_to_dict(bot) for bot in crawl.bots],
            "pages_traversed": crawl.pages_traversed,
            "scrape_stats": _scrape_stats_to_dict(stats),
        }

    def restore_crawl(self) -> tuple[CrawlResult, ScrapeStats]:
        payload = self.stages[STAGE_CRAWL]
        crawl = CrawlResult(
            bots=[scraped_bot_from_dict(entry) for entry in payload["bots"]],
            pages_traversed=payload["pages_traversed"],
        )
        return crawl, _scrape_stats_from_dict(payload["scrape_stats"])

    def store_traceability(self, results: list[TraceabilityResult], validation: ValidationReport | None) -> None:
        self.stages[STAGE_TRACEABILITY] = {
            "results": [_traceability_to_dict(result) for result in results],
            "validation": _validation_to_dict(validation) if validation is not None else None,
        }

    def restore_traceability(self) -> tuple[list[TraceabilityResult], ValidationReport | None]:
        payload = self.stages[STAGE_TRACEABILITY]
        validation = payload["validation"]
        return (
            [_traceability_from_dict(entry) for entry in payload["results"]],
            _validation_from_dict(validation) if validation is not None else None,
        )

    def store_code(self, analyses: list[RepoAnalysis]) -> None:
        self.stages[STAGE_CODE] = {"analyses": [_repo_analysis_to_dict(analysis) for analysis in analyses]}

    def restore_code(self) -> list[RepoAnalysis]:
        return [_repo_analysis_from_dict(entry) for entry in self.stages[STAGE_CODE]["analyses"]]

    def store_honeypot(self, report: HoneypotReport) -> None:
        self.stages[STAGE_HONEYPOT] = {"report": _honeypot_to_dict(report)}

    def restore_honeypot(self) -> HoneypotReport:
        return _honeypot_from_dict(self.stages[STAGE_HONEYPOT]["report"])

    # -- persistence ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": PIPELINE_CHECKPOINT_VERSION,
            "stages": self.stages,
            "stage_status": self.stage_status,
            "ledger": self.ledger.to_dict(),
            "metrics": self.metrics,
        }

    def save(self, path: str | Path) -> Path:
        target = Path(path)
        # Write-then-rename so a crash mid-save never corrupts progress.
        temporary = target.with_suffix(target.suffix + ".tmp")
        temporary.write_text(json.dumps(self.to_dict()))
        temporary.replace(target)
        return target

    @classmethod
    def load(cls, path: str | Path) -> "PipelineCheckpoint":
        payload = json.loads(Path(path).read_text())
        version = payload.get("version")
        if version != PIPELINE_CHECKPOINT_VERSION:
            raise ValueError(f"unsupported pipeline checkpoint version: {version!r}")
        return cls(
            stages=dict(payload["stages"]),
            stage_status=dict(payload.get("stage_status", {})),
            ledger=FaultLedger.from_dict(payload.get("ledger", {})),
            metrics=dict(payload.get("metrics", {})),
        )

    @classmethod
    def load_or_empty(cls, path: str | Path) -> "PipelineCheckpoint":
        target = Path(path)
        if target.exists():
            return cls.load(target)
        return cls()
