"""Full-pipeline checkpointing: stage-granular snapshot and resume.

Generalises the crawl-only :mod:`repro.scraper.checkpoint` to the whole
assessment: after every completed stage (crawl, traceability, code,
honeypot) the pipeline snapshots that stage's raw output plus the fault
ledger so far.  A killed run resumes from the last completed stage instead
of re-crawling the world; aggregates are recomputed from the restored raw
outputs, so a resumed run reports the same statistics as an uninterrupted
one.

Integrity: every save embeds a sha256 checksum of the whole payload plus
one per stage.  :meth:`PipelineCheckpoint.load` refuses silently-corrupted
files (:class:`CheckpointCorruptionError`);
:meth:`PipelineCheckpoint.load_or_empty` *never* crashes on a bad file —
it sidelines it to ``<name>.corrupt``, salvages every stage that still
round-trips against its own checksum, and records the recovery in the
ledger so the resumed run stays honest about what it lost.
"""

from __future__ import annotations

import hashlib
import json
import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.codeanalysis.analyzer import RepoAnalysis
from repro.codeanalysis.patterns import PatternHit
from repro.core.crashpoints import crashpoint
from repro.core.resilience import FaultLedger
from repro.core.storage import ArtifactCorruptionError, atomic_write_json, discard_stale_tmp
from repro.core.supervision import QuarantineLog
from repro.honeypot.console import TriggerRecord
from repro.honeypot.experiment import BotTestOutcome, HoneypotReport
from repro.honeypot.tokens import TokenKind
from repro.core.spill import SpillList
from repro.scraper.base import ScrapeStats
from repro.scraper.checkpoint import scraped_bot_from_dict, scraped_bot_to_dict
from repro.scraper.topgg import CrawlResult
from repro.traceability.analyzer import TraceabilityClass, TraceabilityResult
from repro.traceability.validation import ValidationCase, ValidationReport

logger = logging.getLogger(__name__)

PIPELINE_CHECKPOINT_VERSION = 1

#: Canonical stage names, in execution order.
STAGE_CRAWL = "crawl"
STAGE_TRACEABILITY = "traceability"
STAGE_CODE = "code"
STAGE_HONEYPOT = "honeypot"
STAGES = (STAGE_CRAWL, STAGE_TRACEABILITY, STAGE_CODE, STAGE_HONEYPOT)


class CheckpointCorruptionError(ArtifactCorruptionError):
    """The checkpoint file on disk does not match what was written.

    Also a :class:`~repro.core.storage.StorageError` (and still a
    ``ValueError``), so corruption surfaces through the same typed-error
    contract as every other storage fault.
    """


# -- integrity helpers -------------------------------------------------------


def _canonical_digest(value: Any) -> str:
    """sha256 over the canonical (sorted-keys) JSON form of ``value``."""
    return hashlib.sha256(json.dumps(value, sort_keys=True).encode("utf-8")).hexdigest()


def _payload_checksum(payload: dict) -> str:
    """Whole-file checksum: everything except the checksum field itself."""
    return _canonical_digest({key: value for key, value in payload.items() if key != "checksum"})


def _complete_truncated_json(text: str) -> str | None:
    """Best-effort completion of a tail-truncated JSON document.

    Scans the text once, tracking string/escape state and the open
    object/array frames; cuts at the last position where a *complete*
    value had just ended and appends the matching closers.  Returns the
    repaired document, or None when nothing parseable survives.  Numbers
    and bare literals are never treated as safe cut points (a truncated
    ``12.5e3`` still looks like a prefix), so recovery is conservative.
    """
    start = text.find("{")
    if start == -1:
        return None
    frames: list[list[str]] = []  # [kind, expect]; kind: "obj" | "arr"
    in_string = False
    escape = False
    last_safe = -1
    last_closers = ""

    def note_value_end(position: int) -> None:
        nonlocal last_safe, last_closers
        last_safe = position + 1
        last_closers = "".join("}" if frame[0] == "obj" else "]" for frame in reversed(frames))

    index = start
    while index < len(text):
        char = text[index]
        if in_string:
            if escape:
                escape = False
            elif char == "\\":
                escape = True
            elif char == '"':
                in_string = False
                if frames:
                    frame = frames[-1]
                    if frame[0] == "obj" and frame[1] == "key":
                        frame[1] = "colon"
                    else:
                        frame[1] = "comma"
                        note_value_end(index)
        elif char == '"':
            in_string = True
            escape = False
        elif char == "{":
            frames.append(["obj", "key"])
        elif char == "[":
            frames.append(["arr", "value"])
        elif char in "}]":
            if not frames:
                return None
            frames.pop()
            note_value_end(index)
            if frames:
                frames[-1][1] = "comma"
        elif char == ":":
            if frames and frames[-1][0] == "obj":
                frames[-1][1] = "value"
        elif char == ",":
            if frames:
                frames[-1][1] = "key" if frames[-1][0] == "obj" else "value"
        index += 1
    if last_safe <= start:
        return None
    candidate = text[start:last_safe] + last_closers
    try:
        json.loads(candidate)
    except json.JSONDecodeError:
        return None
    return candidate


def _decode_lenient(text: str) -> Any:
    """Parse ``text`` as JSON, repairing tail truncation when possible."""
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        pass
    repaired = _complete_truncated_json(text)
    if repaired is None:
        return None
    try:
        return json.loads(repaired)
    except json.JSONDecodeError:
        return None


# -- per-type serializers ----------------------------------------------------


def _scrape_stats_to_dict(stats: ScrapeStats) -> dict:
    return dict(vars(stats))


def _scrape_stats_from_dict(payload: dict) -> ScrapeStats:
    stats = ScrapeStats()
    dropped = []
    for key, value in payload.items():
        if hasattr(stats, key):
            setattr(stats, key, value)
        else:
            dropped.append(key)
    if dropped:
        logger.warning(
            "checkpoint scrape stats carried unknown keys (dropped): %s", ", ".join(sorted(dropped))
        )
    return stats


def _traceability_to_dict(result: TraceabilityResult) -> dict:
    return {
        "bot_name": result.bot_name,
        "classification": result.classification.value,
        "categories_found": sorted(result.categories_found),
        "has_website": result.has_website,
        "has_policy_link": result.has_policy_link,
        "policy_page_valid": result.policy_page_valid,
        "generic_policy": result.generic_policy,
        "undisclosed_data_permissions": list(result.undisclosed_data_permissions),
        "keyword_evidence": {category: list(words) for category, words in result.keyword_evidence.items()},
    }


def _traceability_from_dict(payload: dict) -> TraceabilityResult:
    return TraceabilityResult(
        bot_name=payload["bot_name"],
        classification=TraceabilityClass(payload["classification"]),
        categories_found=frozenset(payload["categories_found"]),
        has_website=payload["has_website"],
        has_policy_link=payload["has_policy_link"],
        policy_page_valid=payload["policy_page_valid"],
        generic_policy=payload["generic_policy"],
        undisclosed_data_permissions=tuple(payload["undisclosed_data_permissions"]),
        keyword_evidence={category: list(words) for category, words in payload["keyword_evidence"].items()},
    )


def _validation_to_dict(report: ValidationReport) -> dict:
    return {
        "cases": [
            {"bot_name": case.bot_name, "expected": case.expected, "predicted": case.predicted}
            for case in report.cases
        ]
    }


def _validation_from_dict(payload: dict) -> ValidationReport:
    return ValidationReport(
        cases=[
            ValidationCase(bot_name=entry["bot_name"], expected=entry["expected"], predicted=entry["predicted"])
            for entry in payload["cases"]
        ]
    )


def _repo_analysis_to_dict(analysis: RepoAnalysis) -> dict:
    return {
        "bot_name": analysis.bot_name,
        "link_valid": analysis.link_valid,
        "main_language": analysis.main_language,
        "has_source_code": analysis.has_source_code,
        "performs_check": analysis.performs_check,
        "hits": [
            {"pattern": hit.pattern, "path": hit.path, "line_number": hit.line_number, "line": hit.line}
            for hit in analysis.hits
        ],
    }


def _repo_analysis_from_dict(payload: dict) -> RepoAnalysis:
    return RepoAnalysis(
        bot_name=payload["bot_name"],
        link_valid=payload["link_valid"],
        main_language=payload["main_language"],
        has_source_code=payload["has_source_code"],
        performs_check=payload["performs_check"],
        hits=[
            PatternHit(
                pattern=entry["pattern"],
                path=entry["path"],
                line_number=entry["line_number"],
                line=entry["line"],
            )
            for entry in payload["hits"]
        ],
    )


def _honeypot_to_dict(report: HoneypotReport) -> dict:
    return {
        "outcomes": [
            {
                "bot_name": outcome.bot_name,
                "behavior": outcome.behavior,
                "installed": outcome.installed,
                "tokens_deployed": outcome.tokens_deployed,
                "trigger_kinds": sorted(kind.value for kind in outcome.trigger_kinds),
                "suspicious_messages": list(outcome.suspicious_messages),
                "functionality_explained": outcome.functionality_explained,
                "quarantined": outcome.quarantined,
                "quarantine_reason": outcome.quarantine_reason,
            }
            for outcome in report.outcomes
        ],
        "triggers": [
            {
                "time": record.time,
                "token_id": record.token_id,
                "kind": record.kind.value,
                "context": record.context,
                "client_id": record.client_id,
            }
            for record in report.triggers
        ],
        "manual_verifications": report.manual_verifications,
        "install_failures": report.install_failures,
        "captcha_cost": report.captcha_cost,
    }


def _honeypot_from_dict(payload: dict) -> HoneypotReport:
    return HoneypotReport(
        outcomes=[
            BotTestOutcome(
                bot_name=entry["bot_name"],
                behavior=entry["behavior"],
                installed=entry["installed"],
                tokens_deployed=entry["tokens_deployed"],
                trigger_kinds=frozenset(TokenKind(value) for value in entry["trigger_kinds"]),
                suspicious_messages=tuple(entry["suspicious_messages"]),
                functionality_explained=entry["functionality_explained"],
                quarantined=entry.get("quarantined", False),
                quarantine_reason=entry.get("quarantine_reason", ""),
            )
            for entry in payload["outcomes"]
        ],
        triggers=[
            TriggerRecord(
                time=entry["time"],
                token_id=entry["token_id"],
                kind=TokenKind(entry["kind"]),
                context=entry["context"],
                client_id=entry["client_id"],
            )
            for entry in payload["triggers"]
        ],
        manual_verifications=payload["manual_verifications"],
        install_failures=payload["install_failures"],
        captcha_cost=payload["captcha_cost"],
    )


# -- spill references --------------------------------------------------------
#
# Streamed runs accumulate stage output in JSONL spill files
# (:class:`repro.core.spill.SpillList`) instead of lists; their checkpoint
# payloads then carry a *reference* — path, record count, content sha256 —
# rather than re-embedding every record, so the checkpoint document itself
# stays O(1) in the population.  Restore verifies the reference before
# trusting the file; a missing or altered spill fails like any other
# corruption and the stage simply re-runs.


def _spill_ref(spill: SpillList) -> dict:
    # ``reference`` syncs the spill to media *before* hashing and verifies
    # the on-disk record count against the acknowledged one, so a
    # checkpoint can never reference bytes that did not actually land.
    return spill.reference()


def _restore_spill(ref: dict, encode, decode) -> SpillList:
    path = Path(ref["path"])
    if not path.exists():
        raise CheckpointCorruptionError(f"stage spill file missing: {path}")
    if hashlib.sha256(path.read_bytes()).hexdigest() != ref["sha256"]:
        raise CheckpointCorruptionError(f"stage spill file altered since save: {path}")
    spill = SpillList(path, encode, decode, restore=True)
    if len(spill) != ref["count"]:
        raise CheckpointCorruptionError(
            f"stage spill file holds {len(spill)} records, checkpoint expects {ref['count']}: {path}"
        )
    return spill


# -- the checkpoint ----------------------------------------------------------


@dataclass
class PipelineCheckpoint:
    """Persistent pipeline progress: one payload per completed stage."""

    stages: dict[str, dict] = field(default_factory=dict)
    stage_status: dict[str, str] = field(default_factory=dict)
    ledger: FaultLedger = field(default_factory=FaultLedger)
    #: Per-stage run metrics (``StageMetrics.to_dict()`` payloads), so a
    #: resumed run reports complete metrics for stages it did not re-run.
    metrics: dict[str, dict] = field(default_factory=dict)
    #: Bots the supervision layer quarantined in completed stages.
    quarantines: QuarantineLog = field(default_factory=QuarantineLog)
    #: World-state snapshot (:func:`repro.core.journal.capture_world_state`
    #: payloads keyed ``main`` / ``shards``) taken at the same boundary as
    #: the last stored stage, so a resumed run re-enters the simulation in
    #: the exact state the saving run left it — RNG streams, chaos draws,
    #: circuit breakers and captcha accounts included.
    world_state: dict = field(default_factory=dict)

    def has_stage(self, stage: str) -> bool:
        return stage in self.stages

    @property
    def completed_stages(self) -> list[str]:
        return [stage for stage in STAGES if stage in self.stages]

    # -- stage-typed store/restore ---------------------------------------

    def store_crawl(self, crawl: CrawlResult, stats: ScrapeStats) -> None:
        payload: dict[str, Any] = {
            "pages_traversed": crawl.pages_traversed,
            "scrape_stats": _scrape_stats_to_dict(stats),
        }
        if isinstance(crawl.bots, SpillList):
            payload["bots_spill"] = _spill_ref(crawl.bots)
        else:
            payload["bots"] = [scraped_bot_to_dict(bot) for bot in crawl.bots]
        self.stages[STAGE_CRAWL] = payload

    def restore_crawl(self) -> tuple[CrawlResult, ScrapeStats]:
        payload = self.stages[STAGE_CRAWL]
        if "bots_spill" in payload:
            bots = _restore_spill(payload["bots_spill"], scraped_bot_to_dict, scraped_bot_from_dict)
        else:
            bots = [scraped_bot_from_dict(entry) for entry in payload["bots"]]
        crawl = CrawlResult(pages_traversed=payload["pages_traversed"])
        crawl.bots = bots
        return crawl, _scrape_stats_from_dict(payload["scrape_stats"])

    def store_traceability(self, results: list[TraceabilityResult], validation: ValidationReport | None) -> None:
        payload: dict[str, Any] = {
            "validation": _validation_to_dict(validation) if validation is not None else None,
        }
        if isinstance(results, SpillList):
            payload["results_spill"] = _spill_ref(results)
        else:
            payload["results"] = [_traceability_to_dict(result) for result in results]
        self.stages[STAGE_TRACEABILITY] = payload

    def restore_traceability(self) -> tuple[list[TraceabilityResult], ValidationReport | None]:
        payload = self.stages[STAGE_TRACEABILITY]
        validation = payload["validation"]
        if "results_spill" in payload:
            results = _restore_spill(payload["results_spill"], _traceability_to_dict, _traceability_from_dict)
        else:
            results = [_traceability_from_dict(entry) for entry in payload["results"]]
        return results, _validation_from_dict(validation) if validation is not None else None

    def store_code(self, analyses: list[RepoAnalysis]) -> None:
        if isinstance(analyses, SpillList):
            self.stages[STAGE_CODE] = {"analyses_spill": _spill_ref(analyses)}
        else:
            self.stages[STAGE_CODE] = {
                "analyses": [_repo_analysis_to_dict(analysis) for analysis in analyses]
            }

    def restore_code(self) -> list[RepoAnalysis]:
        payload = self.stages[STAGE_CODE]
        if "analyses_spill" in payload:
            return _restore_spill(payload["analyses_spill"], _repo_analysis_to_dict, _repo_analysis_from_dict)
        return [_repo_analysis_from_dict(entry) for entry in payload["analyses"]]

    def store_honeypot(self, report: HoneypotReport) -> None:
        self.stages[STAGE_HONEYPOT] = {"report": _honeypot_to_dict(report)}

    def restore_honeypot(self) -> HoneypotReport:
        return _honeypot_from_dict(self.stages[STAGE_HONEYPOT]["report"])

    # -- persistence ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        # Small metadata (checksums included) is serialized *before* the
        # large ``stages`` payload, so a tail-truncated file usually keeps
        # the per-stage checksums salvage needs to validate what survived.
        payload: dict[str, Any] = {
            "version": PIPELINE_CHECKPOINT_VERSION,
            "checksum": "",
            "stage_checksums": {stage: _canonical_digest(entry) for stage, entry in self.stages.items()},
            "stage_status": self.stage_status,
            "ledger": self.ledger.to_dict(),
            "metrics": self.metrics,
            "quarantines": self.quarantines.to_dict(),
            "world_state": self.world_state,
            "stages": self.stages,
        }
        payload["checksum"] = _payload_checksum(payload)
        return payload

    def save(self, path: str | Path) -> Path:
        # Write-then-fsync-then-rename (via the unified storage layer) so a
        # crash mid-save never corrupts progress: the rename only happens
        # once the bytes are on disk.  The crash hook keeps the kill
        # harness's ``checkpoint.after_tmp_write`` point in its old spot.
        return atomic_write_json(
            path,
            self.to_dict(),
            label="checkpoint",
            crash_hook=lambda: crashpoint("checkpoint.after_tmp_write"),
        )

    @classmethod
    def load(cls, path: str | Path) -> "PipelineCheckpoint":
        text = Path(path).read_text()
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise CheckpointCorruptionError(f"checkpoint is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise CheckpointCorruptionError("checkpoint payload is not a JSON object")
        version = payload.get("version")
        if version != PIPELINE_CHECKPOINT_VERSION:
            raise ValueError(f"unsupported pipeline checkpoint version: {version!r}")
        stored = payload.get("checksum")
        if stored and stored != _payload_checksum(payload):
            raise CheckpointCorruptionError("checkpoint checksum mismatch: file corrupted on disk")
        return cls(
            stages=dict(payload.get("stages", {})),
            stage_status=dict(payload.get("stage_status", {})),
            ledger=FaultLedger.from_dict(payload.get("ledger", {})),
            metrics=dict(payload.get("metrics", {})),
            quarantines=QuarantineLog.from_dict(payload.get("quarantines", {})),
            world_state=dict(payload.get("world_state", {})),
        )

    @classmethod
    def load_or_empty(cls, path: str | Path) -> "PipelineCheckpoint":
        """Load a checkpoint; on any corruption, salvage instead of crashing.

        A file that fails to parse or verify is renamed to
        ``<name>.corrupt`` (preserved for post-mortem), every stage payload
        that still round-trips against its own checksum is recovered, and
        the loss is recorded in the returned checkpoint's ledger.  The
        worst corrupt file costs re-running the unsalvageable stages —
        never the whole campaign, and never a crash.
        """
        target = Path(path)
        # A crash between write and rename leaves a stale write sidecar
        # behind; it is never authoritative, so clear it here rather than
        # letting it accumulate forever.
        discard_stale_tmp(target)
        if not target.exists():
            return cls()
        try:
            return cls.load(target)
        except Exception as error:
            return cls._salvage(target, error)

    @classmethod
    def _salvage(cls, target: Path, error: Exception) -> "PipelineCheckpoint":
        try:
            # A file truncated mid-multibyte-character (or overwritten with
            # binary garbage) is not valid UTF-8; decode leniently so the
            # salvage path itself can never raise.
            text = target.read_bytes().decode("utf-8", errors="replace")
        except OSError:
            text = ""
        sidecar = target.with_name(target.name + ".corrupt")
        try:
            target.replace(sidecar)
        except OSError:
            logger.warning("could not sideline corrupt checkpoint %s", target)
        recovered = cls()
        payload = _decode_lenient(text)
        if isinstance(payload, dict):
            try:
                recovered.ledger = FaultLedger.from_dict(payload.get("ledger", {}))
            except Exception:
                recovered.ledger = FaultLedger()
            try:
                recovered.quarantines = QuarantineLog.from_dict(payload.get("quarantines", {}))
            except Exception:
                recovered.quarantines = QuarantineLog()
            checksums = payload.get("stage_checksums")
            checksums = checksums if isinstance(checksums, dict) else {}
            stages = payload.get("stages")
            stages = stages if isinstance(stages, dict) else {}
            for stage, entry in stages.items():
                if stage not in STAGES:
                    continue
                expected = checksums.get(stage)
                if expected is not None and _canonical_digest(entry) != expected:
                    continue  # stage payload itself was damaged
                if not cls._stage_round_trips(stage, entry):
                    continue
                recovered.stages[stage] = entry
            status = payload.get("stage_status")
            if isinstance(status, dict):
                recovered.stage_status = {
                    stage: value for stage, value in status.items() if stage in recovered.stages
                }
            metrics = payload.get("metrics")
            if isinstance(metrics, dict):
                recovered.metrics = {
                    stage: entry for stage, entry in metrics.items() if stage in recovered.stages
                }
        kept = ", ".join(recovered.completed_stages) or "none"
        recovered.ledger.record(
            "checkpoint",
            "<local>",
            error,
            0.0,
            detail=f"corrupt checkpoint sidelined to {sidecar.name}; stages recovered: {kept}",
        )
        logger.warning(
            "corrupt checkpoint %s sidelined to %s (stages recovered: %s)", target, sidecar, kept
        )
        return recovered

    @classmethod
    def _stage_round_trips(cls, stage: str, entry: dict) -> bool:
        """Probe: does this stage payload restore into real objects?"""
        probe = cls(stages={stage: entry})
        restore = {
            STAGE_CRAWL: probe.restore_crawl,
            STAGE_TRACEABILITY: probe.restore_traceability,
            STAGE_CODE: probe.restore_code,
            STAGE_HONEYPOT: probe.restore_honeypot,
        }[stage]
        try:
            restore()
        except Exception:
            return False
        return True


# Public aliases: the write-ahead journal (PR 5) reuses the stage
# serializers for per-unit record payloads.
traceability_to_dict = _traceability_to_dict
traceability_from_dict = _traceability_from_dict
repo_analysis_to_dict = _repo_analysis_to_dict
repo_analysis_from_dict = _repo_analysis_from_dict
honeypot_to_dict = _honeypot_to_dict
honeypot_from_dict = _honeypot_from_dict
