"""Campaign planning: estimate cost and duration before running.

A real measurement campaign has budgets — captcha dollars, crawl days,
account-verification labour.  The planner turns a
:class:`~repro.core.config.PipelineConfig` into order-of-magnitude
estimates (request volume, captcha spend, virtual duration) so a team can
size a study before committing; the accompanying tests validate the
estimates against actual simulated runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.botstore.site import PAGE_SIZE
from repro.core.config import PipelineConfig

#: Mean think time of the default scraper configuration (uniform 0.4-1.6s).
_MEAN_THINK = 1.0
#: The listing site's robots.txt crawl delay dominates store pacing.
_STORE_DELAY = 2.0
#: Default 2Captcha economics (mirrors TwoCaptchaClient defaults).
_CAPTCHA_SECONDS = 8.0
_CAPTCHA_PRICE = 0.003
#: Mean feed pacing (uniform 0.5-8s).
_MEAN_FEED_DELAY = 4.25


@dataclass
class CampaignEstimate:
    """Planner output (all values are expectations, not bounds)."""

    listing_pages: int
    total_requests: int
    captcha_solves: int
    captcha_dollars: float
    virtual_hours: float

    def summary(self) -> str:
        return (
            f"~{self.listing_pages} listing pages, ~{self.total_requests:,} requests, "
            f"~{self.captcha_solves} captcha solves (${self.captcha_dollars:.2f}), "
            f"~{self.virtual_hours:.1f} virtual hours"
        )


def estimate_campaign(config: PipelineConfig) -> CampaignEstimate:
    """Estimate one full pipeline run under ``config``."""
    n = config.n_bots
    targets = config.targets
    active = n * targets.population.valid_permission_fraction

    listing_pages = math.ceil(n / PAGE_SIZE) + 1  # + the terminating 404
    detail_requests = n
    invite_requests = n if config.resolve_permissions else 0

    website_requests = 0.0
    if config.run_traceability:
        with_site = active * targets.traceability.website_fraction
        # homepage + (policy page when advertised) + occasional legal hop.
        website_requests = with_site * (1.0 + targets.traceability.policy_link_given_website * 1.5)

    github_requests = 0.0
    if config.run_code_analysis:
        links = active * targets.code.github_link_fraction
        valid = links * targets.code.valid_repo_given_link
        # repo page for every link + ~6 raw files for repos with source.
        github_requests = links + valid * 6.0

    honeypot_requests = 0.0
    honeypot_solves = 0
    honeypot_seconds = 0.0
    if config.run_honeypot:
        sample = config.honeypot_sample_size
        installable = sample * targets.population.valid_permission_fraction
        honeypot_solves = math.ceil(installable)
        per_guild_feed = config.feed_messages * _MEAN_FEED_DELAY
        honeypot_seconds = (
            installable * (per_guild_feed + _CAPTCHA_SECONDS) + config.observation_window
        )
        honeypot_requests = installable * 3  # triggers/exfil beacons, rough

    store_requests = listing_pages + detail_requests
    crawl_requests = store_requests + invite_requests + website_requests + github_requests
    # Store requests pace at the crawl delay; everything else at think time.
    crawl_seconds = (
        store_requests * _STORE_DELAY
        + (invite_requests + website_requests + github_requests) * _MEAN_THINK
    )
    store_captchas = math.ceil(store_requests / 500)  # wall cadence

    total_solves = store_captchas + honeypot_solves
    total_requests = int(crawl_requests + honeypot_requests)
    virtual_seconds = crawl_seconds + honeypot_seconds + total_solves * _CAPTCHA_SECONDS
    return CampaignEstimate(
        listing_pages=listing_pages,
        total_requests=total_requests,
        captcha_solves=total_solves,
        captcha_dollars=total_solves * _CAPTCHA_PRICE,
        virtual_hours=virtual_seconds / 3600.0,
    )
