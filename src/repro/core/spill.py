"""Disk-spilled accumulators for streamed runs.

A streamed pipeline walks the population in fixed-size chunks, but the
stages still *produce* one record per bot (scraped listings, traceability
verdicts, repo analyses).  Left in plain lists those records would grow
linearly with ``n_bots`` and defeat the point of streaming, so streamed
runs accumulate them in a :class:`SpillList`: an append-only JSONL file
beside the checkpoint, holding nothing in RAM but the file handle and a
running count.

The codec pair is supplied by the caller (the same ``*_to_dict`` /
``*_from_dict`` functions the checkpoint layer uses), so a spilled record
round-trips byte-identically with its checkpointed form.  Iteration
re-reads the file in append order; sequential consumers therefore see
exactly the list they would have seen materialized.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator


class SpillList:
    """Append-only, JSONL-backed sequence of codec-serializable records.

    Supports the accumulator subset of the list protocol — ``append``,
    ``extend``, ``len``, iteration, and positive indexing — which is all
    the pipeline's stage loops and mergers use.  Records are written
    through ``encode`` on append and revived through ``decode`` on read;
    only the open file handle and the count stay resident.
    """

    def __init__(
        self,
        path: str | Path,
        encode: Callable[[Any], dict] = lambda item: item,
        decode: Callable[[dict], Any] = lambda payload: payload,
        *,
        restore: bool = False,
    ) -> None:
        self.path = Path(path)
        self._encode = encode
        self._decode = decode
        self._stream = None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if restore and self.path.exists():
            self._count = sum(1 for _ in self._lines())
        else:
            # A fresh accumulator truncates any stale spill from a previous
            # attempt: stage loops restart from their journal, not from the
            # spill, so leftovers would double-count.
            self.path.write_text("")
            self._count = 0

    # -- writing -----------------------------------------------------------

    def append(self, item: Any) -> None:
        if self._stream is None:
            self._stream = open(self.path, "a", encoding="utf-8")
        payload = json.dumps(self._encode(item), sort_keys=True, separators=(",", ":"))
        self._stream.write(payload + "\n")
        self._count += 1

    def extend(self, items: Iterable[Any]) -> None:
        for item in items:
            self.append(item)

    def flush(self) -> None:
        if self._stream is not None:
            self._stream.flush()

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    # -- reading -----------------------------------------------------------

    def _lines(self) -> Iterator[str]:
        self.flush()
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield line

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __iter__(self) -> Iterator[Any]:
        for line in self._lines():
            yield self._decode(json.loads(line))

    def __getitem__(self, index: int | slice) -> Any:
        if isinstance(index, slice):
            start, stop, step = index.indices(self._count)
            if step != 1:
                raise ValueError("SpillList slices must be contiguous")
            out = []
            for position, item in enumerate(self):
                if position >= stop:
                    break
                if position >= start:
                    out.append(item)
            return out
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(index)
        for position, item in enumerate(self):
            if position == index:
                return item
        raise IndexError(index)  # pragma: no cover - count/file disagreement


def spill_dir_for(checkpoint_path: str | Path | None) -> Path:
    """Directory streamed accumulators spill into.

    Beside the checkpoint when one is configured (so a resumed process
    finds the same files), otherwise a per-process temp directory.
    """
    if checkpoint_path is not None:
        directory = Path(f"{checkpoint_path}.spill")
    else:
        directory = Path(tempfile.gettempdir()) / f"repro-spill-{os.getpid()}"
    directory.mkdir(parents=True, exist_ok=True)
    return directory
