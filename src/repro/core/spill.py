"""Disk-spilled accumulators for streamed runs.

A streamed pipeline walks the population in fixed-size chunks, but the
stages still *produce* one record per bot (scraped listings, traceability
verdicts, repo analyses).  Left in plain lists those records would grow
linearly with ``n_bots`` and defeat the point of streaming, so streamed
runs accumulate them in a :class:`SpillList`: an append-only JSONL file
beside the checkpoint, holding nothing in RAM but the file handle and a
running count.

The codec pair is supplied by the caller (the same ``*_to_dict`` /
``*_from_dict`` functions the checkpoint layer uses), so a spilled record
round-trips byte-identically with its checkpointed form.  Iteration
re-reads the file in append order; sequential consumers therefore see
exactly the list they would have seen materialized.

Durability contract: appends ride through a
:class:`~repro.core.storage.DurableAppendFile` in explicit-sync mode —
the hot path never fsyncs (a spill is scratch until referenced), and
:meth:`SpillList.reference` is the acknowledgement point: it syncs the
file to media, verifies the on-disk record count against the in-memory
one, and only then hashes the bytes for the checkpoint's
``{path, count, sha256}`` reference.  Reads are verified too: a record
that fails to decode, or a file that runs out before ``count`` records,
raises a typed :class:`~repro.core.storage.ArtifactCorruptionError`
instead of silently yielding a short or garbled sequence.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.core.storage import ArtifactCorruptionError, DurableAppendFile


class SpillList:
    """Append-only, JSONL-backed sequence of codec-serializable records.

    Supports the accumulator subset of the list protocol — ``append``,
    ``extend``, ``len``, iteration, and positive indexing — which is all
    the pipeline's stage loops and mergers use.  Records are written
    through ``encode`` on append and revived through ``decode`` on read;
    only the open file handle and the count stay resident.
    """

    def __init__(
        self,
        path: str | Path,
        encode: Callable[[Any], dict] = lambda item: item,
        decode: Callable[[dict], Any] = lambda payload: payload,
        *,
        restore: bool = False,
    ) -> None:
        self.path = Path(path)
        self._encode = encode
        self._decode = decode
        self._file = DurableAppendFile(self.path, label="spill", fsync_every=0)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if restore and self.path.exists():
            # Salvage the maximal valid prefix: count only complete,
            # parseable lines and truncate whatever torn tail follows, so
            # later appends extend a clean log.
            self._count, valid_bytes = self._scan_valid_prefix()
            self._file.truncate_to(valid_bytes)
        else:
            # A fresh accumulator truncates any stale spill from a previous
            # attempt: stage loops restart from their journal, not from the
            # spill, so leftovers would double-count.
            self.path.write_text("")
            self._count = 0

    def _scan_valid_prefix(self) -> tuple[int, int]:
        raw = self.path.read_bytes()
        count = 0
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                break  # unterminated line: a torn append — stop here
            line = raw[offset:newline].strip()
            if line:
                try:
                    json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    break
                count += 1
            offset = newline + 1
        return count, offset

    # -- writing -----------------------------------------------------------

    def append(self, item: Any) -> None:
        payload = json.dumps(self._encode(item), sort_keys=True, separators=(",", ":"))
        self._file.write((payload + "\n").encode("utf-8"))
        self._file.commit()
        self._count += 1

    def extend(self, items: Iterable[Any]) -> None:
        for item in items:
            self.append(item)

    def flush(self) -> None:
        self._file.flush()

    def sync(self) -> None:
        """Force (and verify) durability of every appended record."""
        self._file.sync()

    def close(self) -> None:
        self._file.close()

    def reference(self) -> dict:
        """The checkpoint reference: ``{path, count, sha256}``, verified.

        Syncs the file to media first, then recounts the on-disk records
        while hashing — a reference may only ever describe bytes that
        actually landed, so a lying fsync (or any other lost tail) is
        detected *here*, before a checkpoint acknowledges the data.
        """
        self.sync()
        data = self.path.read_bytes() if self.path.exists() else b""
        on_disk = sum(1 for piece in data.split(b"\n") if piece.strip())
        if on_disk != self._count:
            raise ArtifactCorruptionError(
                f"spill {self.path} holds {on_disk} records on disk, {self._count} were acknowledged"
            )
        return {
            "path": str(self.path),
            "count": self._count,
            "sha256": hashlib.sha256(data).hexdigest(),
        }

    # -- reading -----------------------------------------------------------

    def _lines(self) -> Iterator[str]:
        self.flush()
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield line

    def _guarded_lines(self) -> Iterator[str]:
        """Like ``_lines`` but a rotten byte raises typed, not raw.

        Bit rot lands inside already-synced records, so the read itself can
        die mid-file on invalid UTF-8 — that is corruption of acknowledged
        data and must surface through the typed contract.
        """
        try:
            yield from self._lines()
        except UnicodeDecodeError as error:
            raise ArtifactCorruptionError(f"spill {self.path} is damaged: {error}") from error

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __iter__(self) -> Iterator[Any]:
        yielded = 0
        for line in self._guarded_lines():
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ArtifactCorruptionError(f"spill {self.path} is damaged: {error}") from error
            try:
                item = self._decode(payload)
            except Exception as error:
                raise ArtifactCorruptionError(
                    f"spill {self.path} record failed to decode: {error!r}"
                ) from error
            yield item
            yielded += 1
        if yielded < self._count:
            # The file lost acknowledged records (e.g. a lying fsync whose
            # gap was modeled after the records were counted): loud, typed.
            raise ArtifactCorruptionError(
                f"spill {self.path} yielded {yielded} records, {self._count} were acknowledged"
            )

    def __getitem__(self, index: int | slice) -> Any:
        if isinstance(index, slice):
            start, stop, step = index.indices(self._count)
            if step != 1:
                raise ValueError("SpillList slices must be contiguous")
            out = []
            for position, item in enumerate(self):
                if position >= stop:
                    break
                if position >= start:
                    out.append(item)
            return out
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(index)
        for position, item in enumerate(self):
            if position == index:
                return item
        raise IndexError(index)  # pragma: no cover - count/file disagreement


def spill_dir_for(checkpoint_path: str | Path | None) -> Path:
    """Directory streamed accumulators spill into.

    Beside the checkpoint when one is configured (so a resumed process
    finds the same files), otherwise a per-process temp directory.
    """
    if checkpoint_path is not None:
        directory = Path(f"{checkpoint_path}.spill")
    else:
        directory = Path(tempfile.gettempdir()) / f"repro-spill-{os.getpid()}"
    directory.mkdir(parents=True, exist_ok=True)
    return directory
