"""Bot-level supervision: quarantine misbehaving runtimes, keep accounting closed.

PR 1 hardened the *transport* plane (chaos, breakers, retry budgets); this
module hardens the *data* plane.  The paper's methodology tests each bot in
an isolated guild precisely so one bad actor cannot contaminate the
campaign — :class:`BotSupervisor` honours that isolation at the fault
level.  Every per-bot unit of work (honeypot install+run, traceability
policy fetch, code analysis) runs inside an exception firewall with two
behavioural guards:

- a **gateway event budget** — a bot whose handlers flood the event bus is
  cut off after ``max_events`` dispatches inside its supervised window;
- a **virtual-time deadline** — a bot that stalls the simulated clock
  (an infinite backoff loop, a handler that sleeps for months) trips a
  clock watchdog.

A bot that crashes, floods or stalls is **quarantined**: its unit of work
is abandoned, the root cause lands in the :class:`~repro.core.resilience.FaultLedger`,
a :class:`QuarantineRecord` lands in the :class:`QuarantineLog`, and the
stage moves on to the next bot.  Quarantine extends the pipeline's
accounting invariant from ``collected + skipped == population`` to
``processed + skipped + quarantined == population``, enforced by
:func:`verify_accounting` after every fresh stage — sequential or sharded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.crashpoints import crashpoint
from repro.core.resilience import FaultLedger, root_error_class
from repro.web.network import VirtualClock

#: Prefix every quarantine writes into its FaultRecord detail, so ledger
#: consumers can tell quarantines apart from ordinary skips.
QUARANTINE_DETAIL_PREFIX = "quarantined ("

#: Quarantine reasons (the values stored in records and result JSON).
REASON_CRASH = "crash"
REASON_EVENT_FLOOD = "event_flood"
REASON_DEADLINE = "deadline"


class SupervisionError(Exception):
    """Base class for guard trips raised *inside* a supervised unit.

    Deliberately not a :class:`~repro.web.network.NetworkError`,
    ``ApiError`` or ``GuildError`` subclass: bot behaviours and scrapers
    catch those, and a guard trip must never be swallowed by the very
    handler it polices.
    """


class EventBudgetExceeded(SupervisionError):
    """The supervised bot dispatched more gateway events than its budget."""

    def __init__(self, bot_name: str, events: int, budget: int) -> None:
        super().__init__(f"{bot_name} drove {events} gateway events (budget {budget})")
        self.bot_name = bot_name
        self.events = events
        self.budget = budget


class DeadlineExceeded(SupervisionError):
    """The supervised unit consumed more virtual time than its deadline."""

    def __init__(self, bot_name: str, elapsed: float, deadline: float) -> None:
        super().__init__(f"{bot_name} consumed {elapsed:.1f}s virtual time (deadline {deadline:.1f}s)")
        self.bot_name = bot_name
        self.elapsed = elapsed
        self.deadline = deadline


class AccountingError(RuntimeError):
    """The per-stage population invariant does not close — a pipeline bug."""


def verify_accounting(stage: str, population: int, processed: int, skipped: int, quarantined: int) -> None:
    """Enforce ``processed + skipped + quarantined == population`` for a stage."""
    if processed + skipped + quarantined != population:
        raise AccountingError(
            f"{stage}: accounting does not close — processed {processed} + skipped {skipped} "
            f"+ quarantined {quarantined} != population {population}"
        )


@dataclass(frozen=True)
class QuarantineRecord:
    """One quarantined bot: where, why, and what actually went wrong."""

    stage: str
    bot_name: str
    reason: str  # one of REASON_CRASH / REASON_EVENT_FLOOD / REASON_DEADLINE
    root_cause: str  # innermost exception class name
    virtual_time: float
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "bot_name": self.bot_name,
            "reason": self.reason,
            "root_cause": self.root_cause,
            "virtual_time": self.virtual_time,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QuarantineRecord":
        return cls(
            stage=payload["stage"],
            bot_name=payload["bot_name"],
            reason=payload["reason"],
            root_cause=payload.get("root_cause", ""),
            virtual_time=payload.get("virtual_time", 0.0),
            detail=payload.get("detail", ""),
        )


@dataclass
class QuarantineLog:
    """Append-only account of every quarantined bot in a run.

    Kept separate from the :class:`FaultLedger` (which also receives one
    record per quarantine) because quarantines carry their own accounting
    weight: a quarantined bot is neither processed nor skipped.
    """

    records: list[QuarantineRecord] = field(default_factory=list)

    def record(
        self,
        stage: str,
        bot_name: str,
        reason: str,
        error: BaseException | str,
        virtual_time: float,
        detail: str = "",
    ) -> QuarantineRecord:
        root_cause = error if isinstance(error, str) else root_error_class(error)
        entry = QuarantineRecord(
            stage=stage,
            bot_name=bot_name,
            reason=reason,
            root_cause=root_cause,
            virtual_time=round(virtual_time, 6),
            detail=detail,
        )
        self.records.append(entry)
        return entry

    def extend(self, other: "QuarantineLog") -> None:
        self.records.extend(other.records)

    def mark(self) -> int:
        """Absolute append position, mirroring :meth:`FaultLedger.mark`.

        The log is unbounded, so the mark is just the current length — the
        shared API keeps mark-taking call sites uniform across both logs.
        """
        return len(self.records)

    def records_since(self, mark: int) -> list[QuarantineRecord]:
        return self.records[mark:]

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)

    def count(self, stage: str | None = None) -> int:
        if stage is None:
            return len(self.records)
        return sum(1 for record in self.records if record.stage == stage)

    def bot_names(self, stage: str | None = None) -> list[str]:
        return [record.bot_name for record in self.records if stage is None or record.stage == stage]

    def by_reason(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.reason] = counts.get(record.reason, 0) + 1
        return counts

    def to_dict(self) -> dict:
        return {"records": [record.to_dict() for record in self.records]}

    @classmethod
    def from_dict(cls, payload: dict) -> "QuarantineLog":
        return cls(records=[QuarantineRecord.from_dict(entry) for entry in payload.get("records", [])])

    def summary_line(self) -> str:
        reasons = ", ".join(f"{reason}: {count}" for reason, count in sorted(self.by_reason().items()))
        return f"Quarantined {len(self.records)} bot runtime(s) ({reasons or 'none'})."


@dataclass
class SupervisedOutcome:
    """What one supervised unit of work produced."""

    completed: bool
    value: Any = None
    record: QuarantineRecord | None = None

    @property
    def quarantined(self) -> bool:
        return self.record is not None


class BotSupervisor:
    """An exception firewall plus behavioural guards around per-bot work.

    ``passthrough`` names the exception types the *stage* already handles
    (transport faults that should skip the bot through the existing fault
    sink, not quarantine it); they re-raise untouched.  Everything else —
    except ``KeyboardInterrupt``/``SystemExit`` — quarantines the bot.

    Guards are installed only for the duration of :meth:`run` and removed
    in a ``finally``, so clock time passing *between* supervised windows
    (the observation-window sleeps) never trips a deadline.
    """

    def __init__(
        self,
        stage: str,
        clock: VirtualClock,
        ledger: FaultLedger,
        quarantines: QuarantineLog,
        bus=None,
        max_events: int = 0,
        deadline: float = 0.0,
        passthrough: tuple[type[BaseException], ...] = (),
    ) -> None:
        self.stage = stage
        self.clock = clock
        self.ledger = ledger
        self.quarantines = quarantines
        self.bus = bus
        self.max_events = max_events
        self.deadline = deadline
        self.passthrough = passthrough

    def run(
        self,
        bot_name: str,
        work: Callable[[], Any],
        cleanup: Callable[[], None] | None = None,
    ) -> SupervisedOutcome:
        """Run one bot's unit of work under guard.

        Returns a completed outcome carrying ``work()``'s value, or a
        quarantined outcome (with the record) after running ``cleanup``
        (typically: disconnect the bot's runtime from the gateway so the
        quarantined handler can never fire again).
        """
        started = self.clock.now()
        removers: list[Callable[[], None]] = []
        if self.deadline > 0:

            def deadline_watch(now: float) -> None:
                if now - started > self.deadline:
                    raise DeadlineExceeded(bot_name, now - started, self.deadline)

            removers.append(self.clock.add_watchdog(deadline_watch))
        if self.bus is not None and self.max_events > 0:
            counter = {"events": 0}

            def event_guard(event) -> None:
                counter["events"] += 1
                if counter["events"] > self.max_events:
                    raise EventBudgetExceeded(bot_name, counter["events"], self.max_events)

            removers.append(self.bus.add_guard(event_guard))
        try:
            value = work()
            return SupervisedOutcome(completed=True, value=value)
        except self.passthrough:
            raise
        except EventBudgetExceeded as error:
            record = self._quarantine(bot_name, REASON_EVENT_FLOOD, error)
        except DeadlineExceeded as error:
            record = self._quarantine(bot_name, REASON_DEADLINE, error)
        except Exception as error:  # noqa: BLE001 — the firewall is the point
            record = self._quarantine(bot_name, REASON_CRASH, error)
        finally:
            for remove in removers:
                remove()
        if cleanup is not None:
            cleanup()
        return SupervisedOutcome(completed=False, record=record)

    def _quarantine(self, bot_name: str, reason: str, error: BaseException) -> QuarantineRecord:
        now = self.clock.now()
        detail = str(error)[:200]
        record = self.quarantines.record(self.stage, bot_name, reason, error, now, detail=detail)
        self.ledger.record(
            self.stage,
            f"bot:{bot_name}",
            error,
            now,
            bots_skipped=0,  # quarantines are their own accounting bucket
            detail=f"{QUARANTINE_DETAIL_PREFIX}{reason}): {detail}",
        )
        crashpoint("supervision.after_quarantine")
        return record
