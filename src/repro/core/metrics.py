"""Run metrics: per-stage wall/virtual time, traffic and throughput.

The metrics layer answers the operational questions a real measurement
campaign asks ("which stage is slow?", "how many exchanges did the crawl
issue?", "did sharding actually help?") without touching any of the
paper's statistics.  Each pipeline stage records one
:class:`StageMetrics`; sharded stages additionally record one
:class:`ShardMetrics` per shard.  The whole structure serializes through
the pipeline checkpoint so a resumed run still reports complete metrics
for the stages it did not re-execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ShardMetrics:
    """One shard's share of one stage."""

    shard: int
    bots: int = 0
    wall_seconds: float = 0.0
    virtual_seconds: float = 0.0
    exchanges: int = 0
    quarantined: int = 0

    @property
    def throughput(self) -> float:
        """Bots processed per wall-clock second (0 when nothing ran)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.bots / self.wall_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "shard": self.shard,
            "bots": self.bots,
            "wall_seconds": self.wall_seconds,
            "virtual_seconds": self.virtual_seconds,
            "exchanges": self.exchanges,
            "quarantined": self.quarantined,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ShardMetrics":
        return cls(
            shard=payload["shard"],
            bots=payload.get("bots", 0),
            wall_seconds=payload.get("wall_seconds", 0.0),
            virtual_seconds=payload.get("virtual_seconds", 0.0),
            exchanges=payload.get("exchanges", 0),
            quarantined=payload.get("quarantined", 0),
        )


@dataclass
class StageMetrics:
    """One pipeline stage's cost and coverage."""

    stage: str
    wall_seconds: float = 0.0
    #: Simulated seconds the stage consumed.  For sharded stages this is the
    #: max across shards (shards run concurrently in virtual time).
    virtual_seconds: float = 0.0
    #: Exchanges issued on every internet the stage touched (main + shards).
    exchanges: int = 0
    bots_processed: int = 0
    bots_skipped: int = 0
    #: Bots the supervision layer pulled out of the stage mid-flight.
    bots_quarantined: int = 0
    #: True when the stage's output came from a checkpoint, not execution.
    resumed: bool = False
    #: The stage status the *executing* run recorded ("completed" /
    #: "degraded").  Persisted through the checkpoint so a resumed run can
    #: still report — and be compared against — the original outcome even
    #: though its own ``stage_status`` says "resumed".
    outcome: str = ""
    shards: list[ShardMetrics] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "stage": self.stage,
            "wall_seconds": self.wall_seconds,
            "virtual_seconds": self.virtual_seconds,
            "exchanges": self.exchanges,
            "bots_processed": self.bots_processed,
            "bots_skipped": self.bots_skipped,
            "bots_quarantined": self.bots_quarantined,
            "resumed": self.resumed,
            "outcome": self.outcome,
            "shards": [shard.to_dict() for shard in self.shards],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "StageMetrics":
        return cls(
            stage=payload["stage"],
            wall_seconds=payload.get("wall_seconds", 0.0),
            virtual_seconds=payload.get("virtual_seconds", 0.0),
            exchanges=payload.get("exchanges", 0),
            bots_processed=payload.get("bots_processed", 0),
            bots_skipped=payload.get("bots_skipped", 0),
            bots_quarantined=payload.get("bots_quarantined", 0),
            resumed=payload.get("resumed", False),
            outcome=payload.get("outcome", ""),
            shards=[ShardMetrics.from_dict(entry) for entry in payload.get("shards", [])],
        )


@dataclass
class RunMetrics:
    """Every stage's metrics for one pipeline run, in execution order."""

    shard_count: int = 1
    stages: dict[str, StageMetrics] = field(default_factory=dict)
    #: Write-ahead journal counters (``JournalStats.to_dict()``, aggregated
    #: across the main and per-shard journals) when journaling is enabled.
    journal: dict[str, int] | None = None
    #: Serving counters (``ServingMetrics.to_dict()``) when the run hosted
    #: the vetting service: requests served/shed/degraded, cache hit and
    #: stale rates, p50/p99 virtual latency per endpoint.
    serving: dict[str, Any] | None = None

    def record(self, stage_metrics: StageMetrics) -> StageMetrics:
        self.stages[stage_metrics.stage] = stage_metrics
        return stage_metrics

    def stage(self, name: str) -> StageMetrics | None:
        return self.stages.get(name)

    @property
    def total_wall_seconds(self) -> float:
        return sum(stage.wall_seconds for stage in self.stages.values())

    @property
    def total_exchanges(self) -> int:
        return sum(stage.exchanges for stage in self.stages.values())

    @property
    def total_bots_processed(self) -> int:
        return sum(stage.bots_processed for stage in self.stages.values())

    @property
    def total_bots_skipped(self) -> int:
        return sum(stage.bots_skipped for stage in self.stages.values())

    @property
    def total_bots_quarantined(self) -> int:
        return sum(stage.bots_quarantined for stage in self.stages.values())

    def render(self) -> str:
        """A compact table for the CLI's ``--metrics`` flag."""
        lines = [f"=== Run metrics ({self.shard_count} shard{'s' if self.shard_count != 1 else ''}) ==="]
        header = (
            f"{'stage':14s} {'wall(s)':>9s} {'virtual(s)':>12s} {'exchanges':>10s} "
            f"{'processed':>10s} {'skipped':>8s} {'quar':>5s}"
        )
        lines.append(header)
        for stage in self.stages.values():
            suffix = "  (resumed)" if stage.resumed else ""
            lines.append(
                f"{stage.stage:14s} {stage.wall_seconds:9.2f} {stage.virtual_seconds:12.1f} "
                f"{stage.exchanges:10d} {stage.bots_processed:10d} {stage.bots_skipped:8d} "
                f"{stage.bots_quarantined:5d}{suffix}"
            )
            for shard in stage.shards:
                quarantine_note = f", {shard.quarantined} quarantined" if shard.quarantined else ""
                lines.append(
                    f"    shard {shard.shard}: {shard.bots} bots in {shard.wall_seconds:.2f}s wall "
                    f"({shard.throughput:.1f} bots/s), {shard.exchanges} exchanges{quarantine_note}"
                )
        lines.append(
            f"{'total':14s} {self.total_wall_seconds:9.2f} {'':>12s} "
            f"{self.total_exchanges:10d} {self.total_bots_processed:10d} {self.total_bots_skipped:8d} "
            f"{self.total_bots_quarantined:5d}"
        )
        if self.journal is not None:
            lines.append(
                f"journal: {self.journal.get('appended', 0)} appended, "
                f"{self.journal.get('replayed', 0)} replayed, "
                f"{self.journal.get('discarded', 0)} discarded"
            )
        if self.serving is not None:
            lines.append(
                f"serving: {self.serving.get('served', 0)}/{self.serving.get('requests_total', 0)} served, "
                f"{self.serving.get('shed', 0)} shed, {self.serving.get('degraded', 0)} degraded, "
                f"{self.serving.get('stale_served', 0)} stale"
            )
            for endpoint, stats in sorted((self.serving.get("latency") or {}).items()):
                lines.append(
                    f"    {endpoint}: {stats.get('count', 0)} requests, "
                    f"p50 {stats.get('p50', 0.0):.3f}s, p99 {stats.get('p99', 0.0):.3f}s virtual"
                )
            pool = self.serving.get("pool")
            if pool:
                dispatch = pool.get("dispatch", {})
                lines.append(
                    f"    pool: {pool.get('workers', 0)} workers ({pool.get('status', '?')}), "
                    f"{pool.get('restarts', 0)} restarts, {pool.get('fallbacks', 0)} fallbacks; "
                    f"dispatch {dispatch.get('opened', 0)} opened, "
                    f"{dispatch.get('redispatched', 0)} re-dispatched, "
                    f"{dispatch.get('hedges', 0)} hedged, "
                    f"{dispatch.get('duplicates_suppressed', 0)} suppressed"
                )
                for worker in pool.get("per_worker", []):
                    lines.append(
                        f"        worker {worker.get('worker', '?')}: {worker.get('vets', 0)} vets, "
                        f"{worker.get('crashes', 0)} crashes, breaker {worker.get('breaker', '?')}, "
                        f"p99 {worker.get('wall_ms_p99', 0.0):.1f}ms wall"
                    )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "shard_count": self.shard_count,
            "stages": {name: stage.to_dict() for name, stage in self.stages.items()},
        }
        if self.journal is not None:
            payload["journal"] = dict(self.journal)
        if self.serving is not None:
            payload["serving"] = dict(self.serving)
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RunMetrics":
        return cls(
            shard_count=payload.get("shard_count", 1),
            stages={name: StageMetrics.from_dict(entry) for name, entry in payload.get("stages", {}).items()},
            journal=dict(payload["journal"]) if isinstance(payload.get("journal"), dict) else None,
            serving=dict(payload["serving"]) if isinstance(payload.get("serving"), dict) else None,
        )
