"""Pipeline configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.botstore.host import StoreDefenses
from repro.ecosystem.distributions import DEFAULT_TARGETS, Targets

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.web.chaos import ChaosProfile


@dataclass
class PipelineConfig:
    """All knobs for one end-to-end assessment run.

    The defaults reproduce the paper's full-scale measurement (20,915 bots,
    500-bot honeypot); tests and examples shrink ``n_bots``.
    """

    # World generation.
    n_bots: int = 20_915
    seed: int = 2022
    targets: Targets = field(default_factory=lambda: DEFAULT_TARGETS)
    defenses: StoreDefenses = field(default_factory=StoreDefenses)

    # Data collection.
    resolve_permissions: bool = True
    max_pages: int | None = None
    scraper_timeout: float = 10.0

    # Stage switches.
    run_traceability: bool = True
    run_code_analysis: bool = True
    run_honeypot: bool = True

    # Static analysis.
    validation_sample_size: int = 100
    ignore_comments_in_code_analysis: bool = False

    # Dynamic analysis.
    honeypot_sample_size: int = 500
    personas_per_guild: int = 5
    feed_messages: int = 25
    observation_window: float = 86_400.0
    #: Source feed text by scraping the OSN site (the paper's data path)
    #: instead of generating it directly.
    use_osn_feed: bool = True

    # 2Captcha account.
    captcha_balance: float = 100.0

    # Streaming population.
    #: Generate the population lazily (rank-addressable stream) and run the
    #: crawl and stages 2–4 over fixed-size chunks instead of holding every
    #: bot resident.  Output is byte-identical to a materialized run at the
    #: same seed; large result accumulators spill to disk beside the
    #: checkpoint so peak RSS stays bounded regardless of ``n_bots``.
    stream: bool = False
    #: Bots per streamed chunk: the unit of the stream cursor recorded in
    #: checkpoints and the granularity of the ``stream.*`` crash points.
    chunk_size: int = 2_048

    # Sharded execution.
    #: Deterministic shards for stages 2–4.  ``1`` runs the classic
    #: sequential pipeline; ``N > 1`` partitions bots by stable id hash
    #: onto N isolated world views and merges the outputs (virtual time =
    #: max across shards, captcha dollars = sum).
    shards: int = 1
    #: Run shard buckets in worker *processes* instead of threads, so the
    #: GIL stops serialising the shards' pure-Python work.  Determinism is
    #: unchanged: each worker rebuilds its shard world from the shared seed
    #: and returns a picklable outcome, and the parent performs the same
    #: order-fixed merge — ``shards=N`` output is byte-identical either
    #: way.  Ignored for ``shards == 1`` and whenever crash injection or
    #: crash-point recording is armed (those need one process).
    parallel: bool = False

    # Resilience and fault injection.
    #: Chaos profile name ("calm", "flaky", "hostile", "outage"), a
    #: :class:`~repro.web.chaos.ChaosProfile` (e.g. a ``scaled()`` variant
    #: matching a shrunken world's compressed timescale), or None to run
    #: without injected faults.
    chaos_profile: str | ChaosProfile | None = None
    chaos_seed: int = 0
    #: With a path, the pipeline snapshots after every stage and a re-run
    #: resumes from the last completed stage.
    checkpoint_path: str | None = None
    #: With a path, stages additionally append to an intra-stage write-ahead
    #: journal after every completed bot unit (one page for the crawl), so a
    #: crash mid-stage resumes at the next unit instead of the stage start.
    #: Sharded runs derive one journal per shard (``<path>.shard<k>``).
    journal_path: str | None = None
    #: Journal fsync cadence: ``1`` fsyncs every record (the default — an
    #: acknowledged record is a durable record), ``N`` batches fsyncs for
    #: throughput at the price of a torn-tail window up to ``N-1``
    #: acknowledged records wide, ``0`` never fsyncs implicitly.
    journal_fsync_every: int = 1
    #: Storage-fault injection profile ("calm", "scratched", "torn",
    #: "bitrot", "hostile"), a
    #: :class:`~repro.core.storage.StorageChaosProfile`, or None to leave
    #: the process's storage-fault shim untouched.  Installed process-wide
    #: when the pipeline is built, so parallel shard workers (which rebuild
    #: the pipeline from this config) inherit the same seeded schedule.
    disk_chaos: str | None = None
    disk_chaos_seed: int = 0
    #: Absorb stage/bot-level faults into the ledger instead of crashing.
    degrade_on_faults: bool = True
    circuit_failure_threshold: int = 5
    circuit_recovery_time: float = 300.0
    #: Aggregate retry cap per stage (transient retries across all fetches).
    stage_retry_budget: int = 500

    # Bot-level supervision.
    #: Wrap every per-bot unit of work in a supervision firewall that
    #: quarantines the bot on crash, gateway flooding, or deadline blow-out
    #: instead of crashing the stage.  Only active together with
    #: ``degrade_on_faults``.
    supervise_bots: bool = True
    #: Gateway events one bot may cause while supervised (0 = unlimited).
    max_bot_events: int = 500
    #: Virtual seconds one supervised unit of work may consume (0 = unlimited).
    bot_deadline: float = 86_400.0
    #: Plant this many adversarial runtimes (crasher/flooder/staller rotation)
    #: into the honeypot sample — a self-test of the supervision layer.
    adversarial_bots: int = 0

    def scaled(self, n_bots: int, honeypot_sample_size: int | None = None) -> "PipelineConfig":
        """A copy at a smaller scale (for tests and quick examples)."""
        from dataclasses import replace

        sample = honeypot_sample_size if honeypot_sample_size is not None else min(self.honeypot_sample_size, n_bots)
        return replace(self, n_bots=n_bots, honeypot_sample_size=sample)
