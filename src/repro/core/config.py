"""Pipeline configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.botstore.host import StoreDefenses
from repro.ecosystem.distributions import DEFAULT_TARGETS, Targets


@dataclass
class PipelineConfig:
    """All knobs for one end-to-end assessment run.

    The defaults reproduce the paper's full-scale measurement (20,915 bots,
    500-bot honeypot); tests and examples shrink ``n_bots``.
    """

    # World generation.
    n_bots: int = 20_915
    seed: int = 2022
    targets: Targets = field(default_factory=lambda: DEFAULT_TARGETS)
    defenses: StoreDefenses = field(default_factory=StoreDefenses)

    # Data collection.
    resolve_permissions: bool = True
    max_pages: int | None = None
    scraper_timeout: float = 10.0

    # Stage switches.
    run_traceability: bool = True
    run_code_analysis: bool = True
    run_honeypot: bool = True

    # Static analysis.
    validation_sample_size: int = 100
    ignore_comments_in_code_analysis: bool = False

    # Dynamic analysis.
    honeypot_sample_size: int = 500
    personas_per_guild: int = 5
    feed_messages: int = 25
    observation_window: float = 86_400.0
    #: Source feed text by scraping the OSN site (the paper's data path)
    #: instead of generating it directly.
    use_osn_feed: bool = True

    # 2Captcha account.
    captcha_balance: float = 100.0

    def scaled(self, n_bots: int, honeypot_sample_size: int | None = None) -> "PipelineConfig":
        """A copy at a smaller scale (for tests and quick examples)."""
        from dataclasses import replace

        sample = honeypot_sample_size if honeypot_sample_size is not None else min(self.honeypot_sample_size, n_bots)
        return replace(self, n_bots=n_bots, honeypot_sample_size=sample)
