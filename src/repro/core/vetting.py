"""A marketplace vetting pipeline — the paper's proposed mitigation.

Section 7: "Adopting stricter scrutiny when developers collect data and a
continuous rigorous vetting process by the platform's provider could help
mitigate risks."  This module is that vetting process, built from the
measurement components themselves:

1. **Permission review** — risk score and over-privilege vs the declared
   purpose (listing tags); administrator redundancy is called out.
2. **Disclosure review** — data-granting permissions demand a privacy
   policy that at least discloses collection.
3. **Code review** — when source is available, privileged commands without
   user-permission checks are flagged (re-delegation risk).
4. **Dynamic review** — a short canary-token honeypot run in a sandbox
   platform before listing.

The tests and benchmark also demonstrate the *limits* the paper's threat
model implies: a sleeper that behaves during review sails through, which is
why the vetting must be "continuous" — re-review on permission changes
(see :mod:`repro.analysis.longitudinal`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.risk import over_privilege_index, risk_score
from repro.codeanalysis.analyzer import CodeAnalyzer
from repro.discordsim import behaviors
from repro.discordsim.permissions import Permission
from repro.discordsim.platform import DiscordPlatform
from repro.ecosystem.generator import BotProfile
from repro.honeypot.experiment import HoneypotExperiment
from repro.traceability.analyzer import DATA_PERMISSIONS
from repro.web.network import VirtualInternet


@dataclass
class VettingPolicy:
    """What the reviewing platform demands of a submission."""

    max_over_privilege: float = 0.5
    reject_redundant_administrator: bool = True
    require_policy_for_data_permissions: bool = True
    require_code_checks_for_moderation: bool = True
    run_dynamic_review: bool = True
    dynamic_observation: float = 86_400.0


@dataclass
class VettingVerdict:
    bot_name: str
    approved: bool
    reasons: list[str] = field(default_factory=list)
    #: Stages the reviewer skipped (deadline/bulkhead pressure in serving
    #: mode); a verdict with skipped stages is *partial*, not wrong.
    skipped_stages: list[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.skipped_stages)


@dataclass
class VettingReport:
    verdicts: list[VettingVerdict] = field(default_factory=list)

    @property
    def approved(self) -> list[VettingVerdict]:
        return [verdict for verdict in self.verdicts if verdict.approved]

    @property
    def rejected(self) -> list[VettingVerdict]:
        return [verdict for verdict in self.verdicts if not verdict.approved]

    def rejection_reasons(self) -> dict[str, int]:
        histogram: dict[str, int] = {}
        for verdict in self.rejected:
            for reason in verdict.reasons:
                key = reason.split(":")[0]
                histogram[key] = histogram.get(key, 0) + 1
        return histogram


class VettingPipeline:
    """Review submissions with static + dynamic analysis."""

    def __init__(self, policy: VettingPolicy | None = None, seed: int = 1) -> None:
        self.policy = policy or VettingPolicy()
        self.seed = seed
        self._code_analyzer = CodeAnalyzer()

    # -- individual reviews ---------------------------------------------------

    def review(self, bot: BotProfile) -> VettingVerdict:
        """Full review of one submission."""
        verdict = VettingVerdict(bot_name=bot.name, approved=True)
        if not bot.has_valid_permissions:
            verdict.approved = False
            verdict.reasons.append("broken submission: invite link does not resolve")
            return verdict
        self._review_permissions(bot, verdict)
        self._review_disclosure(bot, verdict)
        self._review_code(bot, verdict)
        if verdict.approved and self.policy.run_dynamic_review:
            self._review_dynamic(bot, verdict)
        return verdict

    def vet_population(self, bots: list[BotProfile]) -> VettingReport:
        report = VettingReport()
        for bot in bots:
            report.verdicts.append(self.review(bot))
        return report

    # -- per-stage entry points (the serving layer drives these individually,
    # -- each under its own slice of a request's deadline budget) -------------

    def review_static(self, bot: BotProfile, verdict: VettingVerdict) -> None:
        """Permission + disclosure review: cheap, in-process, always runs."""
        self._review_permissions(bot, verdict)
        self._review_disclosure(bot, verdict)

    def review_code(self, bot: BotProfile, verdict: VettingVerdict) -> None:
        self._review_code(bot, verdict)

    def review_dynamic(
        self, bot: BotProfile, verdict: VettingVerdict, observation: float | None = None
    ) -> float:
        """Sandbox honeypot review; returns sandbox virtual seconds consumed."""
        return self._review_dynamic(bot, verdict, observation=observation)

    # -- stages ------------------------------------------------------------------

    def _review_permissions(self, bot: BotProfile, verdict: VettingVerdict) -> None:
        over_privilege = over_privilege_index(bot.permissions, bot.tags)
        if over_privilege > self.policy.max_over_privilege:
            verdict.approved = False
            verdict.reasons.append(
                f"over-privileged: {over_privilege:.2f} of the requested risk "
                f"(score {risk_score(bot.permissions):.2f}) is unjustified by tags {list(bot.tags)}"
            )
        if self.policy.reject_redundant_administrator and bot.permissions.redundant_with_administrator():
            verdict.approved = False
            verdict.reasons.append(
                "permission misuse: administrator requested alongside redundant permissions"
            )

    def _review_disclosure(self, bot: BotProfile, verdict: VettingVerdict) -> None:
        if not self.policy.require_policy_for_data_permissions:
            return
        exposed = [
            data_type
            for permission, data_type in DATA_PERMISSIONS.items()
            if bot.permissions.has(permission)
        ]
        has_policy = bot.policy.present and bot.policy.link_valid
        if exposed and not has_policy:
            verdict.approved = False
            verdict.reasons.append(
                f"undisclosed data access: requests {sorted(set(exposed))} with no privacy policy"
            )

    def _review_code(self, bot: BotProfile, verdict: VettingVerdict) -> None:
        if not self.policy.require_code_checks_for_moderation:
            return
        if bot.github is None or not bot.github.has_source_code:
            return  # nothing to review — the paper's visibility limit
        analysis = self._code_analyzer.analyze_repo(
            bot.name, bot.github.files, main_language=bot.github.language
        )
        moderation_power = any(
            bot.permissions.has(flag)
            for flag in (Permission.KICK_MEMBERS, Permission.BAN_MEMBERS, Permission.MANAGE_MESSAGES)
        )
        if analysis.analyzed and not analysis.performs_check and moderation_power:
            verdict.approved = False
            verdict.reasons.append(
                "re-delegation risk: privileged commands without user-permission checks"
            )

    def _review_dynamic(
        self, bot: BotProfile, verdict: VettingVerdict, observation: float | None = None
    ) -> float:
        """Sandbox honeypot: one guild, tokens, short observation.

        Returns the virtual seconds the sandbox consumed, so a serving-side
        caller can charge the request's deadline budget with the real cost.
        """
        platform = DiscordPlatform(captcha_seed=self.seed)
        internet = VirtualInternet(platform.clock, seed=self.seed)
        experiment = HoneypotExperiment(platform, internet, seed=self.seed)
        report = experiment.run(
            [bot],
            observation_window=observation if observation is not None else self.policy.dynamic_observation,
            reuse_personas=False,
        )
        flagged = report.flagged_bots
        if flagged:
            verdict.approved = False
            kinds = ", ".join(sorted(kind.value for kind in flagged[0].trigger_kinds))
            verdict.reasons.append(f"dynamic review: unauthorized token access ({kinds})")
        elif report.install_failures:
            verdict.approved = False
            verdict.reasons.append("dynamic review: bot could not be installed in the sandbox")
        return platform.clock.now()


def ground_truth_evasions(report: VettingReport, bots: list[BotProfile]) -> list[str]:
    """Approved bots that are, per ground truth, invasive (vetting misses)."""
    by_name = {bot.name: bot for bot in bots}
    return [
        verdict.bot_name
        for verdict in report.approved
        if by_name[verdict.bot_name].behavior in behaviors.INVASIVE_BEHAVIORS
    ]
