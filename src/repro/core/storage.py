"""Unified durable I/O with seeded storage-fault injection and scrub-on-load recovery.

Every durable artifact the system writes — the pipeline checkpoint, the
write-ahead journal, streamed spill files, the crawl checkpoint pair, the
serving verdict-cache snapshot — used to hand-roll its own
write/fsync/rename sequence, and every one of those sequences silently
assumed a *perfect disk*.  The crash matrix proves the system survives
``SIGKILL``; nothing proved it survives ``ENOSPC``, ``EIO``, a short
write, an fsync that lies, or a byte that rots after the fact.

This module closes that gap three ways:

1. **One durable-I/O abstraction.**  :func:`atomic_write_json` (the
   write-fsync-rename snapshot protocol) and :class:`DurableAppendFile`
   (the append-fsync log protocol, with a configurable fsync cadence) are
   the only two ways bytes become durable.  All five writers route through
   them, so a durability bug is fixed in exactly one place — enforced by a
   grep lint test that forbids ``os.fsync`` and ``.tmp`` handling outside
   this file.

2. **A seeded fault-injection shim.**  :class:`FaultyIO` sits under both
   primitives and decides, per *site* consultation, whether the operation
   fails and how.  Sites are ``{artifact}.{op}`` names from a static
   registry (:data:`STORAGE_SITES`); faults are either one-shot
   (:class:`OneShotFault`, armable in-process or through the
   ``REPRO_DISK_FAULT`` environment variable, mirroring the crash-point
   harness) or drawn from a seeded :class:`StorageFaultSchedule` profile
   (``--disk-chaos``), mirroring :mod:`repro.web.chaos`.

3. **Scrub-on-load recovery.**  :class:`RecoveryManager` verifies every
   artifact before the pipeline trusts it — checksums, spill references,
   stage round-trips — quarantines what cannot be trusted with
   ``.corrupt`` sidecars, and records every detection and repair in the
   :class:`~repro.core.resilience.FaultLedger` under the reserved stage
   name ``storage`` (stripped by ``comparable_result``, like ``journal``
   and ``checkpoint`` provenance).

The contract the disk-fault matrix (``tests/test_disk_fault_matrix.py``)
asserts on top: under any single injected storage fault, a run either
completes byte-identical to its golden or fails with a typed
:class:`StorageError` — never a silently wrong result.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import zlib
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable

logger = logging.getLogger(__name__)

#: Environment arming for one-shot faults: ``site:kind`` or ``site:kind:N``
#: (fire on the Nth consultation of the site), mirroring ``REPRO_CRASH_AT``.
ENV_DISK_FAULT = "REPRO_DISK_FAULT"
#: With a path, every *first* consultation of a site appends its name to the
#: file — lets a harness discover which sites a scenario actually exercises.
ENV_DISK_RECORD = "REPRO_DISK_SITES_RECORD"

#: Exit code a driver process reports when a run dies on a typed
#: :class:`StorageError` (distinct from the crash harness's 137).
STORAGE_EXIT_CODE = 82


# ---------------------------------------------------------------------------
# Typed errors
# ---------------------------------------------------------------------------


class StorageError(Exception):
    """Base of every typed durable-storage failure.

    A run that dies on a :class:`StorageError` failed *loudly*: the disk
    refused or corrupted an operation and the system said so, rather than
    continuing with silently wrong artifacts.
    """


class DiskFullError(StorageError, OSError):
    """The device rejected a write for lack of space (``ENOSPC``)."""


class DiskIOError(StorageError, OSError):
    """A write, fsync or rename failed at the I/O layer (``EIO``),
    including short writes and fsyncs later discovered to have lied."""


class ArtifactCorruptionError(StorageError, ValueError):
    """A durable artifact's bytes do not match what was acknowledged."""


# ---------------------------------------------------------------------------
# Site registry
# ---------------------------------------------------------------------------

#: Artifact label -> the durable operations it performs.  ``settle`` is the
#: post-durability window where bit rot can strike an already-synced file.
STORAGE_ARTIFACTS: dict[str, tuple[str, ...]] = {
    "checkpoint": ("write", "fsync", "rename", "settle"),  # pipeline snapshot
    "journal": ("write", "fsync", "settle"),  # write-ahead unit log
    "spill": ("write", "fsync", "settle"),  # streamed accumulators
    "crawl.meta": ("write", "fsync", "rename", "settle"),  # crawl cursor doc
    "crawl.bots": ("write", "fsync", "settle"),  # crawl bot sidecar
    "serving.state": ("write", "fsync", "rename", "settle"),  # verdict cache
}

#: Fault kinds each operation can suffer.
FAULT_KINDS_BY_OP: dict[str, tuple[str, ...]] = {
    "write": ("enospc", "short"),
    "fsync": ("eio", "lost"),
    "rename": ("eio", "zero"),
    "settle": ("rot",),
}


def storage_sites() -> tuple[str, ...]:
    """Every ``{artifact}.{op}`` consultation site, registry order."""
    return tuple(
        f"{artifact}.{op}" for artifact, ops in STORAGE_ARTIFACTS.items() for op in ops
    )


STORAGE_SITES = frozenset(storage_sites())


def matrix_cells() -> tuple[tuple[str, str], ...]:
    """Every (site, fault kind) pair the disk-fault matrix must cover."""
    return tuple(
        (f"{artifact}.{op}", kind)
        for artifact, ops in STORAGE_ARTIFACTS.items()
        for op in ops
        for kind in FAULT_KINDS_BY_OP[op]
    )


def _site_op(site: str) -> str:
    return site.rsplit(".", 1)[1]


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OneShotFault:
    """Inject ``kind`` on the Nth consultation of ``site``, then go quiet."""

    site: str
    kind: str
    occurrence: int = 1

    def __post_init__(self) -> None:
        if self.site not in STORAGE_SITES:
            raise ValueError(f"unknown storage site: {self.site!r}")
        if self.kind not in FAULT_KINDS_BY_OP[_site_op(self.site)]:
            raise ValueError(f"fault kind {self.kind!r} does not apply to site {self.site!r}")
        if self.occurrence < 1:
            raise ValueError("occurrence is 1-based")

    def decide(self, site: str, count: int) -> str | None:
        if site == self.site and count == self.occurrence:
            return self.kind
        return None


@dataclass(frozen=True)
class StorageChaosProfile:
    """Named storage-adversity level.

    Rates are per-consultation injection probabilities for each fault kind,
    drawn deterministically from ``(seed, site, kind, consult count)`` —
    two identical runs suffer byte-identical fault streams, mirroring
    :class:`repro.web.chaos.ChaosProfile`.
    """

    name: str
    enospc_rate: float = 0.0
    short_write_rate: float = 0.0
    fsync_error_rate: float = 0.0
    lost_fsync_rate: float = 0.0
    rename_error_rate: float = 0.0
    rename_zero_rate: float = 0.0
    rot_rate: float = 0.0

    def scaled(self, **overrides) -> "StorageChaosProfile":
        """A copy with fields overridden (for tests tuning one knob)."""
        return replace(self, **overrides)

    def rate(self, kind: str) -> float:
        return {
            "enospc": self.enospc_rate,
            "short": self.short_write_rate,
            "eio": self.fsync_error_rate,  # fsync + rename eio share below
            "lost": self.lost_fsync_rate,
            "zero": self.rename_zero_rate,
            "rot": self.rot_rate,
        }[kind]

    def rate_for(self, site: str, kind: str) -> float:
        if kind == "eio" and _site_op(site) == "rename":
            return self.rename_error_rate
        return self.rate(kind)


#: ``calm`` injects nothing — the composition profile proving the storage
#: layer itself adds no behavioural change to existing scenarios.
STORAGE_PROFILES: dict[str, StorageChaosProfile] = {
    "calm": StorageChaosProfile(name="calm"),
    "scratched": StorageChaosProfile(
        name="scratched", enospc_rate=0.002, fsync_error_rate=0.002, rename_error_rate=0.002
    ),
    "torn": StorageChaosProfile(name="torn", short_write_rate=0.004, lost_fsync_rate=0.004),
    "bitrot": StorageChaosProfile(name="bitrot", rot_rate=0.01),
    "hostile": StorageChaosProfile(
        name="hostile",
        enospc_rate=0.002,
        short_write_rate=0.002,
        fsync_error_rate=0.002,
        lost_fsync_rate=0.002,
        rename_error_rate=0.002,
        rename_zero_rate=0.002,
        rot_rate=0.002,
    ),
}


def resolve_storage_profile(profile: str | StorageChaosProfile) -> StorageChaosProfile:
    if isinstance(profile, StorageChaosProfile):
        return profile
    try:
        return STORAGE_PROFILES[profile]
    except KeyError:
        known = ", ".join(sorted(STORAGE_PROFILES))
        raise ValueError(f"unknown disk-chaos profile {profile!r} (known: {known})") from None


class StorageFaultSchedule:
    """Seeded probabilistic fault plan (the ``--disk-chaos`` engine)."""

    def __init__(self, profile: str | StorageChaosProfile = "calm", seed: int = 0) -> None:
        self.profile = resolve_storage_profile(profile)
        self.seed = seed

    def _draw(self, site: str, kind: str, count: int) -> float:
        blob = f"{self.seed}:{site}:{kind}:{count}".encode("utf-8")
        return (zlib.crc32(blob) % 1_000_000) / 1_000_000.0

    def decide(self, site: str, count: int) -> str | None:
        for kind in FAULT_KINDS_BY_OP[_site_op(site)]:
            rate = self.profile.rate_for(site, kind)
            if rate > 0.0 and self._draw(site, kind, count) < rate:
                return kind
        return None


def parse_disk_fault(value: str) -> OneShotFault:
    """Parse a ``site:kind[:N]`` arming string (``REPRO_DISK_FAULT``)."""
    parts = value.split(":")
    if len(parts) == 2:
        return OneShotFault(parts[0], parts[1])
    if len(parts) == 3:
        try:
            occurrence = int(parts[2])
        except ValueError:
            raise ValueError(f"bad disk-fault occurrence in {value!r}") from None
        return OneShotFault(parts[0], parts[1], occurrence)
    raise ValueError(f"bad disk-fault arming string {value!r} (want site:kind[:N])")


# ---------------------------------------------------------------------------
# The shim
# ---------------------------------------------------------------------------


class FaultyIO:
    """Consultation point every durable-I/O primitive passes through.

    Holds one fault *plan* (a :class:`OneShotFault`, a
    :class:`StorageFaultSchedule`, or ``None`` for a perfect disk), a
    per-site consultation counter, and the history of faults injected so
    far.  The primitives below ask :meth:`consult` before/after each
    durable operation and act out whatever kind it returns.
    """

    def __init__(self, plan=None, record_path: str | Path | None = None) -> None:
        self.plan = plan
        self.record_path = Path(record_path) if record_path else None
        self.counts: dict[str, int] = {}
        self.injected: list[tuple[str, str]] = []

    def consult(self, site: str) -> str | None:
        if site not in STORAGE_SITES:
            raise RuntimeError(f"unregistered storage site consulted: {site!r}")
        count = self.counts.get(site, 0) + 1
        self.counts[site] = count
        if count == 1 and self.record_path is not None:
            try:
                with open(self.record_path, "a", encoding="utf-8") as stream:
                    stream.write(site + "\n")
            except OSError:  # recording must never break the run
                logger.warning("could not record storage site %s", site)
        kind = self.plan.decide(site, count) if self.plan is not None else None
        if kind is not None:
            self.injected.append((site, kind))
        return kind


_active: FaultyIO | None = None


def install_faults(plan, record_path: str | Path | None = None) -> FaultyIO:
    """Install a process-global fault plan (replacing any active one)."""
    global _active
    _active = FaultyIO(plan, record_path=record_path)
    return _active


def install_disk_chaos(profile: str | StorageChaosProfile, seed: int = 0) -> FaultyIO:
    """Install a seeded ``--disk-chaos`` schedule for this process."""
    return install_faults(StorageFaultSchedule(profile, seed=seed))


def uninstall_faults() -> None:
    global _active
    _active = None


def active_faults() -> FaultyIO | None:
    """The installed shim, arming one lazily from the environment."""
    global _active
    if _active is None:
        armed = os.environ.get(ENV_DISK_FAULT, "")
        record = os.environ.get(ENV_DISK_RECORD, "")
        if armed or record:
            _active = FaultyIO(parse_disk_fault(armed) if armed else None, record_path=record or None)
    return _active


def _consult(site: str) -> str | None:
    shim = active_faults()
    return shim.consult(site) if shim is not None else None


# ---------------------------------------------------------------------------
# Corruption helpers
# ---------------------------------------------------------------------------


def _flip_byte(path: Path, site: str, lo: int, hi: int) -> None:
    """Flip one seeded byte of ``path`` within ``[lo, hi)`` — bit rot."""
    if hi <= lo:
        return
    offset = lo + zlib.crc32(f"{site}:{lo}:{hi}".encode("utf-8")) % (hi - lo)
    try:
        with open(path, "r+b") as handle:
            handle.seek(offset)
            original = handle.read(1)
            if not original:
                return
            handle.seek(offset)
            handle.write(bytes([original[0] ^ 0xFF]))
    except OSError:  # injected rot failing is just less rot
        logger.warning("could not inject bit rot into %s", path)


def payload_checksum(payload: dict) -> str:
    """sha256 of the canonical JSON form of ``payload`` minus ``checksum``."""
    scrubbed = {key: value for key, value in payload.items() if key != "checksum"}
    blob = json.dumps(scrubbed, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def stale_tmp_path(path: str | Path) -> Path:
    """The ``.tmp`` sidecar an interrupted :func:`atomic_write_json` leaves."""
    target = Path(path)
    return target.with_suffix(target.suffix + ".tmp")


def discard_stale_tmp(path: str | Path) -> None:
    """Clear a stale write sidecar; it is never authoritative."""
    stale = stale_tmp_path(path)
    if stale.exists():
        try:
            stale.unlink()
        except OSError:
            logger.warning("could not remove stale write sidecar %s", stale)


def quarantine_artifact(path: str | Path) -> Path | None:
    """Sideline a damaged artifact to ``<name>.corrupt`` for post-mortem."""
    target = Path(path)
    sidecar = target.with_name(target.name + ".corrupt")
    try:
        target.replace(sidecar)
    except OSError:
        logger.warning("could not quarantine corrupt artifact %s", target)
        return None
    return sidecar


# ---------------------------------------------------------------------------
# Durable primitives
# ---------------------------------------------------------------------------


def atomic_write_json(
    path: str | Path,
    payload: Any,
    *,
    label: str,
    serializer: Callable[[Any], str] | None = None,
    crash_hook: Callable[[], None] | None = None,
) -> Path:
    """Write ``payload`` as JSON with the write-fsync-rename protocol.

    The document lands in ``<path>.tmp`` first, is flushed and fsynced,
    and only then renamed over ``path`` — so a crash (or injected fault)
    mid-save never damages the previous version.  ``crash_hook`` runs
    between the fsync and the rename, exactly where the kill harness's
    ``checkpoint.after_tmp_write`` crash point used to live.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    text = serializer(payload) if serializer is not None else json.dumps(payload)
    data = text.encode("utf-8")
    temporary = stale_tmp_path(target)
    lost = False
    with open(temporary, "wb") as stream:
        kind = _consult(f"{label}.write")
        if kind == "enospc":
            raise DiskFullError(f"{label}: no space left on device writing {temporary}")
        if kind == "short":
            head = data[: len(data) // 2]
            stream.write(head)
            stream.flush()
            raise DiskIOError(f"{label}: short write ({len(head)}/{len(data)} bytes) to {temporary}")
        stream.write(data)
        stream.flush()
        kind = _consult(f"{label}.fsync")
        if kind == "eio":
            raise DiskIOError(f"{label}: fsync failed on {temporary}")
        if kind == "lost":
            lost = True  # the fsync lied: the data never reaches media
        else:
            os.fsync(stream.fileno())
    if crash_hook is not None:
        crash_hook()
    kind = _consult(f"{label}.rename")
    if kind == "eio":
        raise DiskIOError(f"{label}: rename {temporary} -> {target} failed")
    temporary.replace(target)
    if kind == "zero" or lost:
        # Rename-without-durability: the directory entry landed but the
        # data blocks never did — the published file reads back empty.
        try:
            with open(target, "r+b") as handle:
                handle.truncate(0)
        except OSError:
            logger.warning("could not model lost data blocks for %s", target)
    if _consult(f"{label}.settle") == "rot":
        _flip_byte(target, f"{label}.settle", 0, len(data))
    return target


class DurableAppendFile:
    """Append-only log file with explicit durability accounting.

    ``write`` appends bytes, ``commit`` marks one *record* complete and
    fsyncs per the configured cadence, ``sync`` forces durability now.

    ``fsync_every=1`` (the default) makes every committed record durable
    before ``commit`` returns; ``fsync_every=N`` batches — a crash can then
    lose up to ``N-1`` acknowledged records off the tail, which consumers
    must treat as a (wider) torn tail; ``fsync_every=0`` leaves durability
    entirely to explicit ``sync`` calls (the spill-file mode, where the
    checkpoint reference is the acknowledgement point).

    Durability is *verified*, not assumed: every successful fsync compares
    the file's size against the bytes acknowledged through this handle and
    raises :class:`DiskIOError` when an earlier fsync turns out to have
    lied (the ``lost`` fault kind models exactly that lie).
    """

    def __init__(self, path: str | Path, *, label: str, fsync_every: int = 1) -> None:
        self.path = Path(path)
        self.label = label
        self.fsync_every = max(0, int(fsync_every))
        self._handle = None
        self._pending = 0  # records committed since the last sync
        self._expected = 0  # bytes acknowledged through this handle
        self._durable = 0  # bytes verified on media

    # -- lifecycle ---------------------------------------------------------

    def _stream(self):
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "ab")
            size = os.fstat(self._handle.fileno()).st_size
            self._expected = size
            self._durable = size
        return self._handle

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def truncate_to(self, offset: int) -> None:
        """Drop bytes past ``offset`` (torn-tail cleanup before appending)."""
        if not self.path.exists():
            return
        if self._handle is not None:
            self._handle.flush()
        with open(self.path, "r+b") as handle:
            handle.truncate(offset)
        if self._handle is not None:
            self._expected = min(self._expected, offset)
            self._durable = min(self._durable, offset)

    # -- writing -----------------------------------------------------------

    def write(self, data: bytes) -> None:
        stream = self._stream()
        kind = _consult(f"{self.label}.write")
        if kind == "enospc":
            raise DiskFullError(f"{self.label}: no space left on device appending to {self.path}")
        if kind == "short":
            head = data[: max(1, len(data) // 2)]
            stream.write(head)
            stream.flush()
            self._expected += len(head)
            raise DiskIOError(f"{self.label}: short write ({len(head)}/{len(data)} bytes) to {self.path}")
        stream.write(data)
        self._expected += len(data)

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def commit(self) -> None:
        """One record is complete; make it durable per the cadence."""
        self._pending += 1
        if self.fsync_every and self._pending >= self.fsync_every:
            self.sync()

    def sync(self) -> None:
        """Force (and verify) durability of everything written so far."""
        if self._handle is None:
            return
        self._handle.flush()
        if self._expected == self._durable:
            self._pending = 0
            return
        kind = _consult(f"{self.label}.fsync")
        if kind == "eio":
            raise DiskIOError(f"{self.label}: fsync failed on {self.path}")
        if kind == "lost":
            # A lying fsync: success is reported but the unsynced tail
            # never reaches media.  Model the loss immediately — O_APPEND
            # keeps later appends consistent with a device that dropped
            # its cache, and the *next* verified fsync detects the gap.
            try:
                with open(self.path, "r+b") as raw:
                    raw.truncate(self._durable)
            except OSError:
                logger.warning("could not model lost fsync for %s", self.path)
            self._pending = 0
            return
        os.fsync(self._handle.fileno())
        actual = os.fstat(self._handle.fileno()).st_size
        if actual != self._expected:
            raise DiskIOError(
                f"{self.label}: {self.path} holds {actual} bytes after fsync, expected "
                f"{self._expected} — an earlier acknowledged fsync lost data"
            )
        previous, self._durable = self._durable, actual
        self._pending = 0
        if _consult(f"{self.label}.settle") == "rot":
            _flip_byte(self.path, f"{self.label}.settle", previous, actual)


# ---------------------------------------------------------------------------
# Scrub-on-load recovery
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScrubAction:
    """One detection/repair the recovery pass performed."""

    artifact: str
    path: str
    problem: str
    action: str


class RecoveryManager:
    """Verify durable artifacts before a process trusts them.

    Detections and repairs are recorded in the supplied
    :class:`~repro.core.resilience.FaultLedger` under the reserved stage
    name ``storage`` (process provenance — stripped from comparable
    results), and kept in :attr:`actions` for direct inspection.
    """

    def __init__(self, ledger=None) -> None:
        self.ledger = ledger
        self.actions: list[ScrubAction] = []

    def note(self, artifact: str, path: str | Path, problem: str, action: str) -> None:
        entry = ScrubAction(artifact=artifact, path=str(path), problem=problem, action=action)
        self.actions.append(entry)
        if self.ledger is not None:
            self.ledger.record(
                "storage",
                "<local>",
                "StorageScrub",
                0.0,
                detail=f"{artifact} {entry.path}: {problem}; {action}",
            )
        logger.warning("storage scrub: %s %s: %s; %s", artifact, path, problem, action)

    # -- pipeline checkpoint ----------------------------------------------

    def scrub_pipeline_checkpoint(self, path: str | Path):
        """Load the pipeline checkpoint, trusting it only if *whole*.

        ``load_or_empty`` already salvages what it can from a damaged
        file; this pass goes further and demands a mutually consistent
        artifact set, because a resumed run must be **byte-identical** to
        an uninterrupted one:

        - every stored stage payload must round-trip into real objects
          (spill references verified against the files on disk);
        - stages may only be trusted together with the world snapshot
          taken at the same boundary — stages without a world (or a
          damaged stage between intact ones) would replay the campaign
          from inconsistent state.

        Any violation resets to an empty checkpoint: the run redoes the
        campaign from scratch, replaying the write-ahead journal where one
        exists — the WAL, not the snapshot, is the finest-grained durable
        record, so "redo with replay" converges on the golden result while
        a partially trusted snapshot would silently diverge from it.
        Damaged spill files are quarantined with ``.corrupt`` sidecars.
        """
        from repro.core.checkpoint import PipelineCheckpoint

        checkpoint = PipelineCheckpoint.load_or_empty(path)
        if not checkpoint.stages:
            return checkpoint
        damaged: list[tuple[str, str]] = []
        for stage in list(checkpoint.stages):
            entry = checkpoint.stages[stage]
            if not PipelineCheckpoint._stage_round_trips(stage, entry):
                damaged.append((stage, "stage payload failed its restore probe"))
                self._quarantine_stage_spills(entry)
        if not checkpoint.world_state:
            damaged.append(("world", "stage payloads present without a world snapshot"))
        if not damaged:
            return checkpoint
        problems = "; ".join(f"{stage}: {why}" for stage, why in damaged)
        self.note(
            "checkpoint",
            path,
            problems,
            "checkpoint reset — campaign redone from scratch (journal replay repairs what it can)",
        )
        return PipelineCheckpoint()

    @staticmethod
    def _stage_spill_paths(entry: dict) -> list[Path]:
        paths = []
        for value in entry.values():
            if isinstance(value, dict) and "sha256" in value and "path" in value:
                paths.append(Path(value["path"]))
        return paths

    def _quarantine_stage_spills(self, entry: dict) -> None:
        for spill_path in self._stage_spill_paths(entry):
            if spill_path.exists():
                sidecar = quarantine_artifact(spill_path)
                if sidecar is not None:
                    self.note("spill", spill_path, "referenced by a damaged stage", f"quarantined to {sidecar.name}")

    # -- checksum-carrying JSON artifacts ---------------------------------

    def scrub_json_artifact(self, path: str | Path, *, artifact: str) -> dict | None:
        """Load an atomic-JSON artifact, verifying its embedded checksum.

        Returns the payload dict, or ``None`` (after quarantining the file
        and recording the detection) when the artifact is missing integrity
        — the caller rebuilds cold instead of trusting damaged state.
        """
        target = Path(path)
        discard_stale_tmp(target)
        if not target.exists():
            return None
        problem = ""
        payload: Any = None
        try:
            payload = json.loads(target.read_text())
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as error:
            problem = f"unreadable: {error}"
        if not problem and not isinstance(payload, dict):
            problem = "payload is not a JSON object"
        if not problem:
            stored = payload.get("checksum")
            if stored and stored != payload_checksum(payload):
                problem = "checksum mismatch: file corrupted on disk"
        if not problem:
            return payload
        sidecar = quarantine_artifact(target)
        where = f"quarantined to {sidecar.name}" if sidecar is not None else "left in place"
        self.note(artifact, target, problem, f"{where}; rebuilding cold")
        return None
