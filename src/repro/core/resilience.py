"""Pipeline-wide resilience primitives: circuit breakers, retries, the ledger.

The paper's scraper survives a hostile measurement substrate — rate limits,
captchas, flaky elements, timeouts, dead hosts — because every failure mode
has a bounded, explicit reaction.  This module centralises those reactions
so all three scrapers, the HTTP client and the honeypot share one
vocabulary:

- :class:`CircuitBreaker` / :class:`CircuitBreakerRegistry` — per-host
  closed → open → half-open breakers on the *virtual* clock, so a dead host
  stops burning retry budget across thousands of bots.
- :class:`RetryPolicy` / :class:`RetryBudget` — one jittered-exponential
  backoff definition replacing the ad-hoc retry loops, plus per-stage retry
  budgets so a degraded stage fails fast instead of retrying forever.
- :class:`FaultLedger` — the structured record of everything a run lost:
  which stage, which host, which error class, at what virtual time, and how
  many bots were skipped because of it.  A resilient run always *completes*;
  the ledger is how it stays honest about partial coverage.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from enum import Enum

from repro.web.network import NetworkError, VirtualClock


class CircuitOpenError(NetworkError):
    """The per-host circuit is open: fail fast instead of contacting it."""

    def __init__(self, host: str, retry_at: float) -> None:
        super().__init__(f"circuit open for {host} until t={retry_at:.1f}")
        self.host = host
        self.retry_at = retry_at


class CircuitState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Classic three-state breaker driven by the virtual clock.

    CLOSED counts consecutive failures; at ``failure_threshold`` it trips
    OPEN and every :meth:`check` raises :class:`CircuitOpenError` without
    touching the host.  After ``recovery_time`` seconds the next check
    transitions to HALF_OPEN, letting probe traffic through;
    ``half_open_successes`` consecutive successes close the circuit again,
    while any failure re-opens it for another full recovery period.
    """

    def __init__(
        self,
        clock: VirtualClock,
        failure_threshold: int = 5,
        recovery_time: float = 300.0,
        half_open_successes: int = 2,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_time <= 0:
            raise ValueError("recovery_time must be positive")
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.half_open_successes = half_open_successes
        self._state = CircuitState.CLOSED
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._opened_at = 0.0
        self.times_opened = 0
        self.short_circuits = 0

    @property
    def state(self) -> CircuitState:
        return self._state

    @property
    def retry_at(self) -> float:
        return self._opened_at + self.recovery_time

    def check(self, host: str = "host") -> None:
        """Raise :class:`CircuitOpenError` unless a request may proceed."""
        if self._state is CircuitState.OPEN:
            if self.clock.now() >= self.retry_at:
                self._state = CircuitState.HALF_OPEN
                self._probe_successes = 0
            else:
                self.short_circuits += 1
                raise CircuitOpenError(host, self.retry_at)

    def record_success(self) -> None:
        if self._state is CircuitState.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_successes:
                self._state = CircuitState.CLOSED
                self._consecutive_failures = 0
        else:
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        if self._state is CircuitState.HALF_OPEN:
            self._trip()
            return
        self._consecutive_failures += 1
        if self._state is CircuitState.CLOSED and self._consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = CircuitState.OPEN
        self._opened_at = self.clock.now()
        self._consecutive_failures = 0
        self.times_opened += 1

    def state_dict(self) -> dict:
        return {
            "state": self._state.value,
            "failures": self._consecutive_failures,
            "probes": self._probe_successes,
            "opened_at": self._opened_at,
            "times_opened": self.times_opened,
            "short_circuits": self.short_circuits,
        }

    def restore_state(self, state: dict) -> None:
        self._state = CircuitState(state["state"])
        self._consecutive_failures = state["failures"]
        self._probe_successes = state["probes"]
        self._opened_at = state["opened_at"]
        self.times_opened = state["times_opened"]
        self.short_circuits = state["short_circuits"]


class CircuitBreakerRegistry:
    """Per-host breakers, shared by every scraper in a pipeline run."""

    def __init__(
        self,
        clock: VirtualClock,
        failure_threshold: int = 5,
        recovery_time: float = 300.0,
        half_open_successes: int = 2,
    ) -> None:
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.half_open_successes = half_open_successes
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker(self, host: str) -> CircuitBreaker:
        key = host.lower()
        found = self._breakers.get(key)
        if found is None:
            found = CircuitBreaker(
                self.clock,
                failure_threshold=self.failure_threshold,
                recovery_time=self.recovery_time,
                half_open_successes=self.half_open_successes,
            )
            self._breakers[key] = found
        return found

    def check(self, host: str) -> None:
        self.breaker(host).check(host)

    def record_success(self, host: str) -> None:
        self.breaker(host).record_success()

    def record_failure(self, host: str) -> None:
        self.breaker(host).record_failure()

    def open_hosts(self) -> list[str]:
        return sorted(host for host, breaker in self._breakers.items() if breaker.state is CircuitState.OPEN)

    def state_dict(self) -> dict:
        return {host: breaker.state_dict() for host, breaker in self._breakers.items()}

    def restore_state(self, state: dict) -> None:
        for host, payload in state.items():
            self.breaker(host).restore_state(payload)

    @property
    def short_circuits(self) -> int:
        return sum(breaker.short_circuits for breaker in self._breakers.values())


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff: the one retry definition for the repo.

    ``delay(attempt)`` returns the pause before retry number ``attempt``
    (0-based).  With a seeded ``rng`` the jitter is deterministic; with
    ``jitter=0`` the schedule is exactly ``base_delay * multiplier**attempt``
    capped at ``max_delay`` — the behaviour the old ad-hoc loops had.
    """

    max_attempts: int = 3
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.0

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        raw = min(self.base_delay * self.multiplier ** max(attempt, 0), self.max_delay)
        if rng is not None and self.jitter > 0:
            raw *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return max(raw, 0.0)

    def should_retry(self, attempt: int) -> bool:
        """Whether retry number ``attempt`` (0-based) is within the policy."""
        return attempt < self.max_attempts


class RetryBudget:
    """A per-stage cap on total retries, shared across a stage's fetches.

    Individual fetches still obey their :class:`RetryPolicy`; the budget
    bounds the *aggregate* so a stage degrading under faults fails fast
    instead of spending hours of virtual time re-trying a dead substrate.
    """

    def __init__(self, budget: int) -> None:
        if budget < 0:
            raise ValueError("budget must be >= 0")
        self.budget = budget
        self.spent = 0
        self.denied = 0

    @property
    def remaining(self) -> int:
        return max(self.budget - self.spent, 0)

    @property
    def exhausted(self) -> bool:
        return self.spent >= self.budget

    def state_dict(self) -> dict:
        return {"spent": self.spent, "denied": self.denied}

    def restore_state(self, state: dict) -> None:
        self.spent = state["spent"]
        self.denied = state["denied"]

    def spend(self) -> bool:
        """Consume one retry; False (and counted) once the budget is gone."""
        if self.spent < self.budget:
            self.spent += 1
            return True
        self.denied += 1
        return False


class StageStatus(Enum):
    """How a pipeline stage ended."""

    COMPLETED = "completed"
    DEGRADED = "degraded"  # finished, but the ledger recorded faults
    FAILED = "failed"  # produced no output at all
    SKIPPED = "skipped"  # disabled by configuration
    RESUMED = "resumed"  # restored from a PipelineCheckpoint


def root_error_class(error: BaseException) -> str:
    """The innermost cause's class name (what actually went wrong)."""
    cause: BaseException = error
    while cause.__cause__ is not None:
        cause = cause.__cause__
    return type(cause).__name__


@dataclass(frozen=True)
class FaultRecord:
    """One absorbed fault: where, what, when, and what it cost."""

    stage: str
    host: str
    error_class: str
    virtual_time: float
    bots_skipped: int = 0
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "host": self.host,
            "error_class": self.error_class,
            "virtual_time": self.virtual_time,
            "bots_skipped": self.bots_skipped,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultRecord":
        return cls(
            stage=payload["stage"],
            host=payload["host"],
            error_class=payload["error_class"],
            virtual_time=payload["virtual_time"],
            bots_skipped=payload.get("bots_skipped", 0),
            detail=payload.get("detail", ""),
        )


@dataclass
class FaultLedger:
    """Append-only account of every fault a run absorbed.

    Records are kept in occurrence order; with a seeded world the order is
    deterministic, so :meth:`to_json` of two same-seed runs is byte-identical
    — the property the chaos benchmarks assert.

    Batch runs keep the ledger unbounded (``max_records=None``) so resume
    slicing stays index-stable.  Long-lived serving ledgers pass a bound:
    the ledger becomes a ring that drops its oldest records and counts the
    drops, so a multi-epoch service run has bounded RSS without silently
    forgetting that it forgot.
    """

    records: list[FaultRecord] = field(default_factory=list)
    #: When set, keep at most this many records (oldest dropped first).
    max_records: int | None = None
    #: Records evicted by the ring bound.  Includes drops inherited from
    #: merged ledgers (:meth:`extend`), so it reports *how much was ever
    #: forgotten* — it is NOT an index offset into this ledger's history.
    dropped: int = 0
    #: How many records have left ``self.records`` *from the front of this
    #: ledger specifically*.  ``drop_offset + len(records)`` is a stable
    #: absolute position: a mark taken before a trim still resolves to the
    #: same records afterwards.  Unlike ``dropped`` this never counts drops
    #: merged in from another ledger.
    drop_offset: int = 0

    def record(
        self,
        stage: str,
        host: str,
        error: BaseException | str,
        virtual_time: float,
        bots_skipped: int = 0,
        detail: str = "",
    ) -> FaultRecord:
        error_class = error if isinstance(error, str) else root_error_class(error)
        entry = FaultRecord(
            stage=stage,
            host=host,
            error_class=error_class,
            virtual_time=round(virtual_time, 6),
            bots_skipped=bots_skipped,
            detail=detail,
        )
        self.records.append(entry)
        self._trim()
        return entry

    def extend(self, other: "FaultLedger") -> None:
        self.records.extend(other.records)
        self.dropped += other.dropped
        self._trim()

    def _trim(self) -> None:
        if self.max_records is not None and len(self.records) > self.max_records:
            excess = len(self.records) - self.max_records
            del self.records[:excess]
            self.dropped += excess
            self.drop_offset += excess

    def mark(self) -> int:
        """An absolute position in this ledger's append history.

        Stable across :meth:`_trim`: resolve it with :meth:`records_since`
        instead of slicing ``records`` directly, which shifts under a
        bounded ring.
        """
        return self.drop_offset + len(self.records)

    def records_since(self, mark: int) -> list[FaultRecord]:
        """Records appended after ``mark``, however many were trimmed since.

        Records appended after the mark but already evicted by the ring are
        gone (the ledger forgot them and counted the forgetting); the slice
        then starts at the oldest retained record rather than resurfacing
        unrelated older ones.
        """
        return self.records[max(mark - self.drop_offset, 0):]

    def __len__(self) -> int:
        return len(self.records)

    def count(self, stage: str | None = None) -> int:
        if stage is None:
            return len(self.records)
        return sum(1 for record in self.records if record.stage == stage)

    def bots_skipped(self, stage: str | None = None) -> int:
        return sum(record.bots_skipped for record in self.records if stage is None or record.stage == stage)

    def quarantine_records(self, stage: str | None = None) -> list[FaultRecord]:
        """The subset of records written by the supervision layer.

        Quarantines live in the ledger (with their root cause) *and* in the
        pipeline's :class:`~repro.core.supervision.QuarantineLog`; the
        detail prefix lets ledger-only consumers tell them apart from
        ordinary skips.
        """
        from repro.core.supervision import QUARANTINE_DETAIL_PREFIX

        return [
            record
            for record in self.records
            if record.detail.startswith(QUARANTINE_DETAIL_PREFIX) and (stage is None or record.stage == stage)
        ]

    @property
    def total_bots_skipped(self) -> int:
        return self.bots_skipped()

    def by_stage(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.stage] = counts.get(record.stage, 0) + 1
        return counts

    def by_error_class(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.error_class] = counts.get(record.error_class, 0) + 1
        return counts

    def to_dict(self) -> dict:
        payload: dict = {"records": [record.to_dict() for record in self.records]}
        if self.max_records is not None:
            payload["max_records"] = self.max_records
            payload["dropped"] = self.dropped
            payload["drop_offset"] = self.drop_offset
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultLedger":
        return cls(
            records=[FaultRecord.from_dict(entry) for entry in payload.get("records", [])],
            max_records=payload.get("max_records"),
            dropped=payload.get("dropped", 0),
            drop_offset=payload.get("drop_offset", 0),
        )

    def to_json(self) -> str:
        """Canonical serialization (sorted keys) for byte-wise comparison."""
        return json.dumps(self.to_dict(), sort_keys=True)

    def summary_line(self) -> str:
        stages = ", ".join(f"{stage}: {count}" for stage, count in sorted(self.by_stage().items()))
        return (
            f"Absorbed {len(self.records)} faults ({stages or 'none'}); "
            f"{self.total_bots_skipped} bots skipped."
        )
