"""Messaging-platform security profiles.

The paper situates Discord against the other large chatbot platforms
(Section 2 and Related Work): they share the same architecture — cloud-
hosted third-party bots, OAuth access delegation, closed source — but
differ in whether a **runtime policy enforcer** backs up OAuth, and in how
strictly the marketplace vets apps.  These profiles make the comparison
executable: build the same guild + bot on each posture and watch the
permission re-delegation attack succeed or die.
"""

from repro.platforms.profiles import (
    PLATFORM_PROFILES,
    PlatformProfile,
    make_platform,
)

__all__ = ["PLATFORM_PROFILES", "PlatformProfile", "make_platform"]
