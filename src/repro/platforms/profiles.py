"""Concrete platform postures and a factory for simulated instances."""

from __future__ import annotations

from dataclasses import dataclass

from repro.discordsim.platform import DiscordPlatform, PlatformPolicy
from repro.web.network import VirtualClock


@dataclass(frozen=True)
class PlatformProfile:
    """One platform's security-relevant traits, as the paper describes them.

    - ``runtime_enforcer``: a second, platform-side access-control level
      that checks the invoking user's permissions at runtime ([13]'s
      "two-level access control system consisting of the OAuth protocol
      and a runtime policy enforcer").
    - ``marketplace_vetting``: whether apps pass review before users can
      install them (Slack App Directory / Teams store), versus Discord's
      community-run listing with no official marketplace.
    - ``official_marketplace``: whether the platform itself hosts the
      listing the measurement would crawl.
    """

    name: str
    runtime_enforcer: bool
    marketplace_vetting: bool
    official_marketplace: bool
    notes: str

    def policy(self) -> PlatformPolicy:
        return PlatformPolicy(
            name=self.name,
            runtime_user_permission_checks=self.runtime_enforcer,
            vetting_review=self.marketplace_vetting,
        )


PLATFORM_PROFILES: dict[str, PlatformProfile] = {
    "discord": PlatformProfile(
        name="discord",
        runtime_enforcer=False,
        marketplace_vetting=False,
        official_marketplace=False,
        notes=(
            "No official marketplace (bots found on top.gg); permission "
            "checks on command invocations are entrusted to developers."
        ),
    ),
    "slack": PlatformProfile(
        name="slack",
        runtime_enforcer=True,
        marketplace_vetting=True,
        official_marketplace=True,
        notes="App Directory review plus a runtime policy enforcer.",
    ),
    "teams": PlatformProfile(
        name="teams",
        runtime_enforcer=True,
        marketplace_vetting=True,
        official_marketplace=True,
        notes="Store review plus a runtime policy enforcer.",
    ),
    "telegram": PlatformProfile(
        name="telegram",
        runtime_enforcer=False,
        marketplace_vetting=False,
        official_marketplace=False,
        notes="Open Bot API; no review gate, no runtime user checks.",
    ),
}


def make_platform(profile_name: str, clock: VirtualClock | None = None, captcha_seed: int = 7) -> DiscordPlatform:
    """Build a simulated platform instance with the named posture.

    The guild/role/message substrate is shared; only the access-control
    posture differs — which is precisely the paper's point that these
    platforms "have a very similar architecture" yet diverge on
    enforcement.
    """
    try:
        profile = PLATFORM_PROFILES[profile_name]
    except KeyError:
        raise KeyError(
            f"unknown platform profile {profile_name!r}; options: {sorted(PLATFORM_PROFILES)}"
        ) from None
    return DiscordPlatform(clock, captcha_seed=captcha_seed, policy=profile.policy())
