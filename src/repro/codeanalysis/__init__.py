"""Static code analysis: permission-check detection (Section 3/4.2).

Given the source files retrieved from a bot's repository, determine its main
language and whether any file contains one of the permission/role-check APIs
from the paper's Table 3.
"""

from repro.codeanalysis.patterns import CHECK_PATTERNS, PatternHit, find_check_hits
from repro.codeanalysis.language import detect_language, language_of_path
from repro.codeanalysis.analyzer import CodeAnalyzer, RepoAnalysis
from repro.codeanalysis.pyast import AstAnalysis, AstHit, PythonAstAnalyzer

__all__ = [
    "AstAnalysis",
    "AstHit",
    "CHECK_PATTERNS",
    "CodeAnalyzer",
    "PatternHit",
    "PythonAstAnalyzer",
    "RepoAnalysis",
    "detect_language",
    "find_check_hits",
    "language_of_path",
]
