"""Table 3: the permission/role-check APIs searched for in bot code.

+-----+------------------+-----+---------------------+
| No. | Checks           | No. | Checks              |
+-----+------------------+-----+---------------------+
| 1   | ``.hasPermission(`` | 3 | ``member.roles.cache`` |
| 2   | ``.has(``        | 4   | ``userPermissions``  |
+-----+------------------+-----+---------------------+

Matching is substring-based, like the paper's automated approach; an
optional comment-stripping mode exists for the ablation benchmark that
quantifies how much naive matching over-counts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: The four check APIs, verbatim from Table 3.
CHECK_PATTERNS: tuple[str, ...] = (
    ".hasPermission(",
    ".has(",
    "member.roles.cache",
    "userPermissions",
)

_LINE_COMMENT = {
    "JavaScript": "//",
    "TypeScript": "//",
    "Python": "#",
}


@dataclass(frozen=True)
class PatternHit:
    """One occurrence of a check API in a source file."""

    pattern: str
    path: str
    line_number: int
    line: str


def _strip_comment(line: str, language: str | None) -> str:
    marker = _LINE_COMMENT.get(language or "", None)
    if marker is None:
        return line
    index = line.find(marker)
    return line if index < 0 else line[:index]


def find_check_hits(
    files: dict[str, str],
    language: str | None = None,
    ignore_comments: bool = False,
) -> list[PatternHit]:
    """Scan source files for the Table-3 APIs.

    ``ignore_comments`` enables the stricter variant (ablation); the paper's
    default is plain substring search over the whole file.
    """
    hits: list[PatternHit] = []
    for path, content in sorted(files.items()):
        if path.endswith((".md", ".txt", ".json")):
            continue  # documentation and manifests are not code
        for line_number, line in enumerate(content.splitlines(), start=1):
            haystack = _strip_comment(line, language) if ignore_comments else line
            for pattern in CHECK_PATTERNS:
                if pattern in haystack:
                    hits.append(PatternHit(pattern=pattern, path=path, line_number=line_number, line=line.strip()))
    return hits


def contains_check(files: dict[str, str], language: str | None = None, ignore_comments: bool = False) -> bool:
    return bool(find_check_hits(files, language, ignore_comments))
