"""Per-repository analysis and population aggregation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codeanalysis.language import detect_language
from repro.codeanalysis.patterns import PatternHit, find_check_hits

#: The languages whose check APIs the paper modelled (Table 3).
ANALYZED_LANGUAGES = ("JavaScript", "Python")


@dataclass
class RepoAnalysis:
    """Result of analyzing one repository's source files."""

    bot_name: str
    link_valid: bool
    main_language: str | None = None
    has_source_code: bool = False
    performs_check: bool = False
    hits: list[PatternHit] = field(default_factory=list)

    @property
    def analyzed(self) -> bool:
        """Whether this repo is in the analyzed (JS/Python) population."""
        return self.has_source_code and self.main_language in ANALYZED_LANGUAGES


class CodeAnalyzer:
    """Classify repositories as check-performing or not."""

    def __init__(self, ignore_comments: bool = False) -> None:
        self.ignore_comments = ignore_comments

    def analyze_repo(
        self,
        bot_name: str,
        files: dict[str, str],
        link_valid: bool = True,
        main_language: str | None = None,
    ) -> RepoAnalysis:
        """Analyze one repository.

        ``main_language`` comes from the repository page when the scraper
        saw one; otherwise it is inferred from the files.
        """
        if not link_valid:
            return RepoAnalysis(bot_name=bot_name, link_valid=False)
        language = main_language or detect_language(files)
        has_source = language is not None
        analysis = RepoAnalysis(
            bot_name=bot_name,
            link_valid=True,
            main_language=language,
            has_source_code=has_source,
        )
        if has_source and language in ANALYZED_LANGUAGES:
            analysis.hits = find_check_hits(files, language, ignore_comments=self.ignore_comments)
            analysis.performs_check = bool(analysis.hits)
        return analysis
