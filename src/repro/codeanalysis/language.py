"""Repository language detection.

The scraper reads the repository page's language bar when present; this
module provides the fallback used when only raw files are available, and
the per-file classification the analyzer reports hit locations with.
"""

from __future__ import annotations

_EXTENSION_LANGUAGES: dict[str, str] = {
    ".js": "JavaScript",
    ".mjs": "JavaScript",
    ".cjs": "JavaScript",
    ".jsx": "JavaScript",
    ".ts": "TypeScript",
    ".tsx": "TypeScript",
    ".py": "Python",
    ".java": "Java",
    ".go": "Go",
    ".cs": "C#",
    ".rs": "Rust",
    ".rb": "Ruby",
    ".php": "PHP",
    ".c": "C",
    ".cpp": "C++",
    ".kt": "Kotlin",
}


def language_of_path(path: str) -> str | None:
    """Language of a single file, by extension."""
    for extension, language in _EXTENSION_LANGUAGES.items():
        if path.endswith(extension):
            return language
    return None


def detect_language(files: dict[str, str]) -> str | None:
    """Main language of a file set: the one with the most source bytes.

    Returns ``None`` for repositories with no recognisable source files
    (the paper's README-only repos).
    """
    sizes: dict[str, int] = {}
    for path, content in files.items():
        language = language_of_path(path)
        if language is not None:
            sizes[language] = sizes.get(language, 0) + len(content)
    if not sizes:
        return None
    return max(sizes.items(), key=lambda item: (item[1], item[0]))[0]
