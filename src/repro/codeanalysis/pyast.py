"""AST-based permission-check detection for Python bot code.

The paper's automated approach is substring matching over source text,
which (as its Section 5 concedes for keywords generally) cannot tell a real
``perms.has(...)`` call from the same characters inside a comment or string
literal.  For Python we can do better: parse the module and look for the
check *constructs* —

- a call whose callee is an attribute named ``has`` (``permissions.has(x)``),
- access to permission-carrying attributes (``member.guild_permissions``,
  ``channel.permissions_for``),
- the ``discord.py`` decorator family (``@commands.has_permissions(...)``,
  ``@has_guild_permissions(...)``).

Files that fail to parse are reported, not silently skipped.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Attribute names that read a user's permissions.
_PERMISSION_ATTRIBUTES = frozenset({"guild_permissions", "permissions_for", "channel_permissions"})

#: Decorator callee names that enforce invoker permissions.
_CHECK_DECORATORS = frozenset({"has_permissions", "has_guild_permissions", "has_any_role", "has_role"})


@dataclass(frozen=True)
class AstHit:
    """One detected permission-check construct."""

    path: str
    line_number: int
    construct: str  # "has_call" | "permission_attribute" | "check_decorator"
    detail: str


@dataclass
class AstAnalysis:
    hits: list[AstHit] = field(default_factory=list)
    parse_failures: list[str] = field(default_factory=list)

    @property
    def performs_check(self) -> bool:
        return bool(self.hits)


class _CheckVisitor(ast.NodeVisitor):
    def __init__(self, path: str, analysis: AstAnalysis) -> None:
        self.path = path
        self.analysis = analysis

    def visit_Call(self, node: ast.Call) -> None:
        callee = node.func
        if isinstance(callee, ast.Attribute) and callee.attr == "has":
            self.analysis.hits.append(
                AstHit(
                    path=self.path,
                    line_number=node.lineno,
                    construct="has_call",
                    detail=ast.unparse(callee) if hasattr(ast, "unparse") else callee.attr,
                )
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in _PERMISSION_ATTRIBUTES:
            self.analysis.hits.append(
                AstHit(
                    path=self.path,
                    line_number=node.lineno,
                    construct="permission_attribute",
                    detail=node.attr,
                )
            )
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_decorators(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_decorators(node)
        self.generic_visit(node)

    def _check_decorators(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            name = None
            if isinstance(target, ast.Attribute):
                name = target.attr
            elif isinstance(target, ast.Name):
                name = target.id
            if name in _CHECK_DECORATORS:
                self.analysis.hits.append(
                    AstHit(
                        path=self.path,
                        line_number=decorator.lineno,
                        construct="check_decorator",
                        detail=name,
                    )
                )


class PythonAstAnalyzer:
    """Structural permission-check detection for Python repositories."""

    def analyze(self, files: dict[str, str]) -> AstAnalysis:
        analysis = AstAnalysis()
        for path, content in sorted(files.items()):
            if not path.endswith(".py"):
                continue
            try:
                tree = ast.parse(content)
            except SyntaxError:
                analysis.parse_failures.append(path)
                continue
            _CheckVisitor(path, analysis).visit(tree)
        return analysis


def compare_with_substring(files: dict[str, str]) -> dict[str, bool]:
    """Run both detectors; lets callers quantify false positives/negatives."""
    from repro.codeanalysis.patterns import contains_check

    ast_result = PythonAstAnalyzer().analyze(files)
    return {
        "substring": contains_check(files, language="Python"),
        "ast": ast_result.performs_check,
    }
