"""``top.gg``-like chatbot repository site.

The leading Discord bot listing the paper scraped: a paginated "top
chatbot" list plus per-bot detail pages carrying ID, name, URL, tags,
permissions (via the invite link), guild count, description and GitHub
link — behind anti-scraping middleware.
"""

from repro.botstore.listings import Listing, ListingStore
from repro.botstore.site import PAGE_SIZE, TOPGG_HOSTNAME, TopGGSite
from repro.botstore.host import StoreDefenses, build_store_host

__all__ = [
    "Listing",
    "ListingStore",
    "PAGE_SIZE",
    "StoreDefenses",
    "TOPGG_HOSTNAME",
    "TopGGSite",
    "build_store_host",
]
