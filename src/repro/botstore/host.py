"""Assemble the repository site host with its anti-scraping defences."""

from __future__ import annotations

from dataclasses import dataclass

from repro.botstore.listings import ListingStore
from repro.botstore.site import TOPGG_HOSTNAME, TopGGSite
from repro.ecosystem.generator import Ecosystem
from repro.web.antiscrape import CaptchaWallMiddleware, FlakyMiddleware, RateLimitMiddleware
from repro.web.captcha import CaptchaService
from repro.web.network import VirtualInternet
from repro.web.server import VirtualHost


@dataclass
class StoreDefenses:
    """Anti-scraping configuration for the listing site.

    Defaults approximate a real listing site: a generous rate limit, a
    captcha wall that re-challenges periodically, and (off by default, for
    determinism) transient failures.
    """

    rate_limit_requests: int = 120
    rate_limit_window: float = 60.0
    captcha_enabled: bool = True
    captcha_every: int = 500
    captcha_clearance: int = 500
    flaky_rate: float = 0.0
    captcha_seed: int = 17


def build_store_host(
    ecosystem: Ecosystem,
    internet: VirtualInternet,
    defenses: StoreDefenses | None = None,
) -> tuple[TopGGSite, CaptchaService]:
    """Build the listing site, attach defences, register on the internet.

    Returns the site plus the captcha service (tests inspect its stats).
    """
    defenses = defenses or StoreDefenses()
    store = ListingStore(ecosystem)
    site = TopGGSite(store)
    host: VirtualHost = site.host
    captcha_service = CaptchaService(internet.clock, seed=defenses.captcha_seed)
    if defenses.flaky_rate > 0.0:
        host.add_middleware(FlakyMiddleware(defenses.flaky_rate, seed=defenses.captcha_seed))
    host.add_middleware(
        RateLimitMiddleware(internet.clock, defenses.rate_limit_requests, defenses.rate_limit_window)
    )
    if defenses.captcha_enabled:
        host.add_middleware(
            CaptchaWallMiddleware(
                captcha_service,
                challenge_every=defenses.captcha_every,
                clearance_requests=defenses.captcha_clearance,
            )
        )
    internet.register(TOPGG_HOSTNAME, host)
    return site, captcha_service
