"""HTML rendering for the repository site.

Two deliberately different page structures (variant "A" and "B") alternate
across list pages and detail pages — the "varying page structures" the
paper's scraper had to cope with.  The scraper must try multiple element
locators and fall back gracefully.
"""

from __future__ import annotations

from repro.botstore.listings import Listing, ListingStore
from repro.web.http import Request, Response
from repro.web.server import VirtualHost

TOPGG_HOSTNAME = "top.gg.sim"

#: Listings per page.  The paper traversed "over 800 pages" for ~21k bots,
#: i.e. roughly 25 per page.
PAGE_SIZE = 25


class TopGGSite:
    """Route handlers for the listing site (middleware added separately)."""

    #: Robots policy the site publishes: crawlers may browse listings but
    #: must pace themselves and stay out of the admin area.
    ROBOTS_TXT = "User-agent: *\nCrawl-delay: 2\nDisallow: /admin\n"

    def __init__(self, store: ListingStore) -> None:
        self.store = store
        self.host = VirtualHost(TOPGG_HOSTNAME)
        self.host.add_route("/", self._home)
        self.host.add_route("/robots.txt", lambda request: Response.text(self.ROBOTS_TXT))
        self.host.add_route("/admin", lambda request: Response.text("staff only", status=403))
        self.host.add_route("/list/top", self._top_list)
        self.host.add_route("/bot/{listing_id}", self._bot_page)

    # -- pages ----------------------------------------------------------------

    def _home(self, request: Request) -> Response:
        body = (
            "<html><head><title>Top Bots</title></head><body>"
            '<h1>Discover the best bots</h1><a id="top-list-link" href="/list/top?page=1">Top chatbots</a>'
            "</body></html>"
        )
        return Response.html(body)

    def _top_list(self, request: Request) -> Response:
        try:
            page_number = int(request.param("page", "1") or "1")
        except ValueError:
            page_number = 1
        listings = self.store.page(page_number, PAGE_SIZE)
        total_pages = self.store.page_count(PAGE_SIZE)
        if not listings:
            return Response.html(_page("No more bots", '<p id="empty">Nothing here.</p>'), status=404)
        variant = "A" if page_number % 2 == 1 else "B"
        cards = "".join(_render_card(listing, variant) for listing in listings)
        nav = ""
        if page_number < total_pages:
            nav = f'<a id="next-page" href="/list/top?page={page_number + 1}">Next</a>'
        content = f'<div id="bot-list" data-variant="{variant}">{cards}</div>{nav}'
        return Response.html(_page(f"Top chatbots — page {page_number}", content))

    def _bot_page(self, request: Request, listing_id: str) -> Response:
        try:
            listing = self.store.get(int(listing_id))
        except ValueError:
            listing = None
        if listing is None:
            return Response.html(_page("Bot not found", "<p>No such bot.</p>"), status=404)
        variant = "A" if listing.listing_id % 2 == 0 else "B"
        return Response.html(_page(listing.name, _render_detail(listing, variant)))


def _render_card(listing: Listing, variant: str) -> str:
    if variant == "A":
        return (
            f'<div class="bot-card"><a class="bot-link" href="/bot/{listing.listing_id}">'
            f'<span class="bot-name">{listing.name}</span></a>'
            f'<span class="bot-votes">{listing.votes}</span></div>'
        )
    return (
        f'<li class="listing"><h3><a data-bot-id="{listing.listing_id}" '
        f'href="/bot/{listing.listing_id}">{listing.name}</a></h3>'
        f'<em class="votes">{listing.votes} votes</em></li>'
    )


def _render_detail(listing: Listing, variant: str) -> str:
    tags = "".join(f'<span class="tag">{tag}</span>' for tag in listing.tags)
    website = (
        f'<a id="website-link" rel="website" href="{listing.website_url}">Website</a>'
        if listing.website_url
        else ""
    )
    github = (
        f'<a id="github-link" rel="github" href="{listing.github_url}">GitHub</a>'
        if listing.github_url
        else ""
    )
    built_with = f'<p class="built-with">Built with {listing.built_with}</p>' if listing.built_with else ""
    if variant == "A":
        stats = (
            f'<span id="guild-count">{listing.guild_count}</span>'
            f'<span id="votes">{listing.votes}</span>'
        )
        invite = f'<a id="invite-button" href="{listing.invite_url}">Invite</a>'
    else:
        stats = (
            f'<span class="stat-guilds">{listing.guild_count} servers</span>'
            f'<span class="stat-votes">{listing.votes} votes</span>'
        )
        invite = f'<a class="invite-link" href="{listing.invite_url}">Add to Server</a>'
    return (
        f'<div class="bot-detail" data-variant="{variant}" data-listing-id="{listing.listing_id}">'
        f'<h1 class="bot-title">{listing.name}</h1>'
        f'<p class="developer">by <span class="dev-tag">{listing.developer_tag}</span></p>'
        f'<div class="tags">{tags}</div>'
        f'<p class="description">{listing.description}</p>'
        f"{stats}{invite}{website}{github}{built_with}"
        "</div>"
    )


def _page(title: str, content: str) -> str:
    return f"<html><head><title>{title}</title></head><body>{content}</body></html>"
