"""Listing records: what the repository site knows about each bot."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ecosystem.generator import BotProfile, Ecosystem


@dataclass(frozen=True)
class Listing:
    """One listing on the repository site (the scrape target)."""

    listing_id: int
    name: str
    developer_tag: str
    tags: tuple[str, ...]
    description: str
    guild_count: int
    votes: int
    invite_url: str
    website_url: str | None
    github_url: str | None
    built_with: str | None

    @classmethod
    def from_profile(cls, bot: BotProfile) -> "Listing":
        return cls(
            listing_id=bot.index,
            name=bot.name,
            developer_tag=bot.developer_tag,
            tags=tuple(bot.tags),
            description=bot.description,
            guild_count=bot.guild_count,
            votes=bot.votes,
            invite_url=bot.invite_url,
            website_url=bot.website_url,
            github_url=bot.github_url,
            built_with=bot.built_with,
        )


class ListingStore:
    """All listings, ordered by votes (the "top chatbot" list).

    Materialized ecosystems are converted to listings eagerly (evolved
    populations may renumber bots, so positions cannot stand in for ids).
    Streaming ecosystems are paged lazily: listing ids equal bot ranks by
    construction, so a page is just a slice of the stream and no listing is
    resident between requests.
    """

    def __init__(self, ecosystem: Ecosystem) -> None:
        self._streaming = getattr(ecosystem, "stream", None) is not None
        if self._streaming:
            self._bots = ecosystem.bots
            self.listings: list[Listing] = []
            self._by_id: dict[int, Listing] = {}
        else:
            self._bots = None
            self.listings = [Listing.from_profile(bot) for bot in ecosystem.bots]
            self._by_id = {listing.listing_id: listing for listing in self.listings}

    def __len__(self) -> int:
        if self._streaming:
            return len(self._bots)
        return len(self.listings)

    def get(self, listing_id: int) -> Listing | None:
        if self._streaming:
            if not 0 <= listing_id < len(self._bots):
                return None
            return Listing.from_profile(self._bots[listing_id])
        return self._by_id.get(listing_id)

    def page(self, page_number: int, page_size: int) -> list[Listing]:
        """1-based page of the top list."""
        if page_number < 1:
            return []
        start = (page_number - 1) * page_size
        if self._streaming:
            stop = min(start + page_size, len(self._bots))
            return [Listing.from_profile(bot) for bot in self._bots[start:stop]]
        return self.listings[start : start + page_size]

    def page_count(self, page_size: int) -> int:
        return (len(self) + page_size - 1) // page_size
