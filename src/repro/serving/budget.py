"""Per-request deadline budgets in virtual time.

Every request admitted by the service gets a :class:`DeadlineBudget` — a
fixed allowance of virtual seconds it may spend across the vetting stages.
Each stage asks the budget whether its estimated cost still fits before it
runs, charges the *actual* cost after, and is skipped-with-degradation when
the remainder would not cover it.  A deadline never kills a request; it
only shrinks how much review the response is backed by (the verdict says
so via ``degraded``).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DeadlineBudget:
    """A virtual-time allowance for one request.

    ``start`` is the request's arrival instant; ``deadline`` the total
    virtual seconds it may consume.  ``cursor`` tracks the request's own
    simulated completion time (arrival + waits + stage costs) — the serving
    queue model, not the shared world clock.
    """

    start: float
    deadline: float
    cursor: float = 0.0
    #: Stage name -> virtual seconds actually charged.
    charges: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.deadline < 0:
            raise ValueError("deadline must be >= 0")
        self.cursor = max(self.cursor, self.start)

    @property
    def spent(self) -> float:
        return self.cursor - self.start

    @property
    def remaining(self) -> float:
        return max(self.deadline - self.spent, 0.0)

    @property
    def exhausted(self) -> bool:
        return self.remaining <= 0.0

    def affords(self, cost: float) -> bool:
        """Whether ``cost`` more virtual seconds still fit the deadline."""
        return cost <= self.remaining

    def charge(self, stage: str, cost: float) -> float:
        """Consume ``cost`` seconds for ``stage``; returns the new cursor."""
        if cost < 0:
            raise ValueError("cost must be >= 0")
        self.cursor += cost
        self.charges[stage] = self.charges.get(stage, 0.0) + cost
        return self.cursor

    @property
    def latency(self) -> float:
        """Virtual seconds from arrival to the request's modeled completion."""
        return self.cursor - self.start
