"""Deterministic load driver for the vetting service.

The harness fires a seeded, scripted request stream at a
:class:`~repro.serving.service.VettingService` over the virtual internet —
waves of ``/vet`` and ``/audit`` requests with clock advances between waves,
an optional kill-and-restart mid-burst, and health polling — then verifies
the serving contract:

- zero unhandled exceptions: every outcome is a response or a counted
  transport failure;
- every service-origin 429/503 carries ``Retry-After`` and a corresponding
  :class:`~repro.core.resilience.FaultLedger` record;
- after a restart, ``/readyz`` recovers within the warmup window.

All draws come from one seeded RNG, so two same-seed runs issue identical
streams — the serving analogue of the chaos benchmarks' determinism.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any

from repro.serving.service import ServicePolicy, VettingService
from repro.web.client import HttpClient
from repro.web.network import NetworkError, VirtualInternet


@dataclass(frozen=True)
class LoadScript:
    """One deterministic request schedule."""

    waves: int = 6
    requests_per_wave: int = 40
    #: Virtual seconds the driver sleeps between waves (lets the admission
    #: queue drain; inside a wave requests arrive back-to-back).
    wave_gap: float = 1_800.0
    #: Fraction of requests that re-target an already-requested bot
    #: (exercises the verdict cache).
    repeat_fraction: float = 0.6
    #: Every Nth request is an /audit instead of a /vet (0 disables).
    audit_every: int = 0
    #: Kill + restart the service at the start of this wave (None = never).
    restart_at_wave: int | None = None
    #: POST an update notification for an already-vetted bot every Nth
    #: request (0 disables) — exercises invalidation + revalidation.
    update_every: int = 0


@dataclass
class ServingRunReport:
    """What the stream produced, plus the contract checks."""

    requests_sent: int = 0
    status_counts: dict[int, int] = field(default_factory=dict)
    transport_errors: int = 0
    truncated_bodies: int = 0
    chaos_walls: int = 0
    service_shed: int = 0
    shed_missing_retry_after: int = 0
    service_5xx: int = 0
    unexplained_5xx: int = 0
    verdicts: int = 0
    degraded_verdicts: int = 0
    stale_verdicts: int = 0
    cold_latencies: list[float] = field(default_factory=list)
    cached_latencies: list[float] = field(default_factory=list)
    readyz_recovered: bool = True
    serving_metrics: dict[str, Any] = field(default_factory=dict)

    @staticmethod
    def _p99(samples: list[float]) -> float:
        if not samples:
            return 0.0
        ordered = sorted(samples)
        index = min(int(round(0.99 * (len(ordered) - 1))), len(ordered) - 1)
        return ordered[index]

    @property
    def cold_p99(self) -> float:
        return self._p99(self.cold_latencies)

    @property
    def cached_p99(self) -> float:
        return self._p99(self.cached_latencies)

    @property
    def contract_ok(self) -> bool:
        return self.unexplained_5xx == 0 and self.shed_missing_retry_after == 0 and self.readyz_recovered

    def summary_lines(self) -> list[str]:
        statuses = ", ".join(f"{status}: {count}" for status, count in sorted(self.status_counts.items()))
        lines = [
            f"Sent {self.requests_sent} requests ({statuses or 'none'}); "
            f"{self.transport_errors} transport failures, {self.truncated_bodies} mangled bodies.",
            f"Verdicts: {self.verdicts} ({self.degraded_verdicts} degraded, {self.stale_verdicts} stale); "
            f"shed {self.service_shed} with Retry-After; {self.chaos_walls} chaos walls.",
            f"p99 virtual latency: cold {self.cold_p99:.1f}s, cached {self.cached_p99:.3f}s.",
            f"Contract: {'OK' if self.contract_ok else 'VIOLATED'} "
            f"(unexplained 5xx: {self.unexplained_5xx}, shed without Retry-After: "
            f"{self.shed_missing_retry_after}, readyz recovered: {self.readyz_recovered}).",
        ]
        return lines

    def to_dict(self) -> dict[str, Any]:
        return {
            "requests_sent": self.requests_sent,
            "status_counts": {str(status): count for status, count in sorted(self.status_counts.items())},
            "transport_errors": self.transport_errors,
            "truncated_bodies": self.truncated_bodies,
            "chaos_walls": self.chaos_walls,
            "service_shed": self.service_shed,
            "service_5xx": self.service_5xx,
            "unexplained_5xx": self.unexplained_5xx,
            "verdicts": self.verdicts,
            "degraded_verdicts": self.degraded_verdicts,
            "stale_verdicts": self.stale_verdicts,
            "cold_p99": round(self.cold_p99, 6),
            "cached_p99": round(self.cached_p99, 6),
            "readyz_recovered": self.readyz_recovered,
            "contract_ok": self.contract_ok,
            "serving": self.serving_metrics,
        }


class ServingHarness:
    """Drives a service instance with a :class:`LoadScript`."""

    def __init__(self, internet: VirtualInternet, service: VettingService, seed: int = 0) -> None:
        self.internet = internet
        self.service = service
        self.seed = seed
        self.client = HttpClient(internet, client_id="load-driver")

    # -- scripted run ---------------------------------------------------------

    def run(self, script: LoadScript) -> ServingRunReport:
        report = ServingRunReport()
        rng = random.Random(self.seed)
        names = sorted(self.service.directory)
        if not names:
            raise ValueError("service directory is empty")
        guilds = sorted(self.service._rosters)
        seen: list[str] = []
        sequence = 0
        for wave in range(script.waves):
            if script.restart_at_wave is not None and wave == script.restart_at_wave:
                self.restart_service()
                report.readyz_recovered = self._await_ready()
            for _ in range(script.requests_per_wave):
                sequence += 1
                if script.audit_every and guilds and sequence % script.audit_every == 0:
                    path = f"/audit/{rng.choice(guilds)}"
                    self._request(report, "GET", path)
                    continue
                if script.update_every and seen and sequence % script.update_every == 0:
                    target = rng.choice(seen)
                    self._request(report, "POST", f"/bots/{target}/update")
                    continue
                if seen and rng.random() < script.repeat_fraction:
                    name = rng.choice(seen)
                else:
                    name = rng.choice(names)
                    if name not in seen:
                        seen.append(name)
                self._request(report, "GET", f"/vet/{name}")
            self.internet.clock.sleep(script.wave_gap)
            self._request(report, "GET", "/healthz", count=False)
            self._request(report, "GET", "/readyz", count=False)
        report.serving_metrics = self.service.metrics.to_dict()
        return report

    def restart_service(self) -> VettingService:
        """Kill the service and bring up a fresh instance on the same host.

        The verdict store is durable (a real deployment would keep it in a
        database); in-flight admission state and bulkhead leases die with
        the process.  The new instance re-registers on the internet and
        warms up before /readyz goes ready again.
        """
        old = self.service
        durable = {"cache": old.cache.state_dict(), "counters": old.metrics.counters_dict()}
        replacement = VettingService(
            self.internet,
            old.directory,
            policy=old.policy,
            vetting_policy=old.pipeline.policy,
            seed=old.pipeline.seed,
            hostname=old.hostname,
            platform=old.guardian.platform if old.guardian is not None else None,
        )
        replacement.restore_state(durable)
        for guild, roster in old._rosters.items():
            replacement.register_guild(guild, roster)
        self.service = replacement
        return replacement

    def _await_ready(self, polls: int = 10) -> bool:
        """Poll /readyz, advancing past the warmup, until it reports ready."""
        step = max(self.service.policy.warmup / 2, 1.0)
        for _ in range(polls):
            try:
                response = self.client.get(f"https://{self.service.hostname}/readyz")
            except NetworkError:
                self.internet.clock.sleep(step)
                continue
            if response.status == 200:
                return True
            self.internet.clock.sleep(step)
        return False

    # -- one exchange, classified ---------------------------------------------

    def _request(self, report: ServingRunReport, method: str, path: str, count: bool = True) -> None:
        url = f"https://{self.service.hostname}{path}"
        ledger_before = len(self.service.ledger.records) + self.service.ledger.dropped
        if count:
            report.requests_sent += 1
        try:
            if method == "POST":
                response = self.client.post(url)
            else:
                response = self.client.get(url)
        except NetworkError:
            if count:
                report.transport_errors += 1
            return
        if not count:
            return
        report.status_counts[response.status] = report.status_counts.get(response.status, 0) + 1
        body = response.body or ""
        chaos_injected = body.startswith("chaos:") or "captcha-challenge" in body
        if chaos_injected:
            report.chaos_walls += 1
            return
        if response.status == 200:
            try:
                payload = json.loads(body)
            except json.JSONDecodeError:
                report.truncated_bodies += 1  # chaos body truncation in transit
                return
            if "approved" in payload:
                report.verdicts += 1
                if payload.get("degraded"):
                    report.degraded_verdicts += 1
                if payload.get("stale"):
                    report.stale_verdicts += 1
                latency = float(payload.get("virtual_latency", 0.0))
                if payload.get("cache") in ("hit", "stale"):
                    report.cached_latencies.append(latency)
                else:
                    report.cold_latencies.append(latency)
            return
        if response.status == 429:
            report.service_shed += 1
            if "Retry-After" not in response.headers:
                report.shed_missing_retry_after += 1
            return
        if response.status >= 500:
            report.service_5xx += 1
            if "Retry-After" not in response.headers:
                report.shed_missing_retry_after += 1
            ledger_after = len(self.service.ledger.records) + self.service.ledger.dropped
            if ledger_after <= ledger_before:
                report.unexplained_5xx += 1
