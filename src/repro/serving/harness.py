"""Deterministic load driver for the vetting service.

The harness fires a seeded, scripted request stream at a
:class:`~repro.serving.service.VettingService` over the virtual internet —
waves of ``/vet`` and ``/audit`` requests from ``K`` deterministically
interleaved virtual clients, clock advances between waves, an optional
kill-and-restart mid-burst, an optional worker kill-storm (SIGKILL a slice
of the vet-worker pool mid-wave), and health polling — then verifies the
serving contract:

- zero unhandled exceptions: every outcome is a response or a counted
  transport failure;
- every service-origin 429/503 carries ``Retry-After`` and a corresponding
  :class:`~repro.core.resilience.FaultLedger` record;
- after a restart, ``/readyz`` recovers within the warmup window (a
  readiness timeout is recorded and fails the contract, never silently
  ignored);
- the worker pool's dispatch ledger balances (exactly-once) at every
  between-wave checkpoint and at the end of the run.

Each client draws from its own seeded RNG (client 0 uses the harness seed
itself, so a one-client run is byte-identical to the pre-multi-client
harness), and clients take turns round-robin within a wave — so two
same-seed runs issue identical streams regardless of worker count.
:meth:`ServingRunReport.comparable_dict` strips the execution-plane fields
(pool counters, kill tallies), leaving JSON that must be byte-identical
across ``workers=0`` and ``workers=N``, kill-storms included.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any

from repro.serving.service import ServicePolicy, VettingService
from repro.web.client import HttpClient
from repro.web.network import NetworkError, VirtualInternet


@dataclass(frozen=True)
class LoadScript:
    """One deterministic request schedule."""

    waves: int = 6
    requests_per_wave: int = 40
    #: Virtual seconds the driver sleeps between waves (lets the admission
    #: queue drain; inside a wave requests arrive back-to-back).
    wave_gap: float = 1_800.0
    #: Fraction of requests that re-target an already-requested bot
    #: (exercises the verdict cache).
    repeat_fraction: float = 0.6
    #: Every Nth request is an /audit instead of a /vet (0 disables).
    audit_every: int = 0
    #: Kill + restart the service at the start of this wave (None = never).
    restart_at_wave: int | None = None
    #: POST an update notification for an already-vetted bot every Nth
    #: request (0 disables) — exercises invalidation + revalidation.
    update_every: int = 0
    #: Concurrent virtual clients, interleaved round-robin within a wave.
    #: ``requests_per_wave`` is per client.
    clients: int = 1
    #: SIGKILL ``kill_workers`` pool workers halfway through this wave
    #: (None = never; a no-op against a workerless service).
    kill_workers_at_wave: int | None = None
    kill_workers: int = 2


@dataclass
class ServingRunReport:
    """What the stream produced, plus the contract checks."""

    requests_sent: int = 0
    status_counts: dict[int, int] = field(default_factory=dict)
    transport_errors: int = 0
    truncated_bodies: int = 0
    chaos_walls: int = 0
    service_shed: int = 0
    shed_missing_retry_after: int = 0
    service_5xx: int = 0
    unexplained_5xx: int = 0
    verdicts: int = 0
    degraded_verdicts: int = 0
    stale_verdicts: int = 0
    cold_latencies: list[float] = field(default_factory=list)
    cached_latencies: list[float] = field(default_factory=list)
    readyz_recovered: bool = True
    #: Readiness polls that gave up before /readyz went ready.  Non-zero
    #: means some slice of the run was driven against a never-ready
    #: service — a contract violation, never a silent shrug.
    readiness_timeouts: int = 0
    clients: int = 1
    workers: int = 0
    workers_killed: int = 0
    #: AND of every dispatch-ledger verification taken during the run
    #: (between waves, before a restart, and at the end).
    ledger_consistent: bool = True
    pool: dict[str, Any] | None = None
    serving_metrics: dict[str, Any] = field(default_factory=dict)

    @staticmethod
    def _p99(samples: list[float]) -> float:
        if not samples:
            return 0.0
        ordered = sorted(samples)
        index = min(int(round(0.99 * (len(ordered) - 1))), len(ordered) - 1)
        return ordered[index]

    @property
    def cold_p99(self) -> float:
        return self._p99(self.cold_latencies)

    @property
    def cached_p99(self) -> float:
        return self._p99(self.cached_latencies)

    @property
    def contract_ok(self) -> bool:
        return (
            self.unexplained_5xx == 0
            and self.shed_missing_retry_after == 0
            and self.readyz_recovered
            and self.readiness_timeouts == 0
            and self.ledger_consistent
        )

    def summary_lines(self) -> list[str]:
        statuses = ", ".join(f"{status}: {count}" for status, count in sorted(self.status_counts.items()))
        lines = [
            f"Sent {self.requests_sent} requests ({statuses or 'none'}); "
            f"{self.transport_errors} transport failures, {self.truncated_bodies} mangled bodies.",
            f"Verdicts: {self.verdicts} ({self.degraded_verdicts} degraded, {self.stale_verdicts} stale); "
            f"shed {self.service_shed} with Retry-After; {self.chaos_walls} chaos walls.",
            f"p99 virtual latency: cold {self.cold_p99:.1f}s, cached {self.cached_p99:.3f}s.",
            f"Contract: {'OK' if self.contract_ok else 'VIOLATED'} "
            f"(unexplained 5xx: {self.unexplained_5xx}, shed without Retry-After: "
            f"{self.shed_missing_retry_after}, readyz recovered: {self.readyz_recovered}, "
            f"readiness timeouts: {self.readiness_timeouts}, "
            f"dispatch ledger consistent: {self.ledger_consistent}).",
        ]
        if self.pool is not None:
            dispatch = self.pool.get("dispatch", {})
            lines.append(
                f"Pool: {self.workers} workers, {self.pool.get('restarts', 0)} restarts, "
                f"{self.workers_killed} killed; dispatch {dispatch.get('opened', 0)} opened, "
                f"{dispatch.get('redispatched', 0)} re-dispatched, {dispatch.get('hedges', 0)} hedged, "
                f"{dispatch.get('duplicates_suppressed', 0)} duplicates suppressed, "
                f"{self.pool.get('fallbacks', 0)} in-process fallbacks."
            )
        return lines

    def to_dict(self) -> dict[str, Any]:
        return {
            "requests_sent": self.requests_sent,
            "status_counts": {str(status): count for status, count in sorted(self.status_counts.items())},
            "transport_errors": self.transport_errors,
            "truncated_bodies": self.truncated_bodies,
            "chaos_walls": self.chaos_walls,
            "service_shed": self.service_shed,
            "service_5xx": self.service_5xx,
            "unexplained_5xx": self.unexplained_5xx,
            "verdicts": self.verdicts,
            "degraded_verdicts": self.degraded_verdicts,
            "stale_verdicts": self.stale_verdicts,
            "cold_p99": round(self.cold_p99, 6),
            "cached_p99": round(self.cached_p99, 6),
            "readyz_recovered": self.readyz_recovered,
            "readiness_timeouts": self.readiness_timeouts,
            "clients": self.clients,
            "workers": self.workers,
            "workers_killed": self.workers_killed,
            "ledger_consistent": self.ledger_consistent,
            "pool": self.pool,
            "contract_ok": self.contract_ok,
            "serving": self.serving_metrics,
        }

    def comparable_dict(self) -> dict[str, Any]:
        """The report minus the execution-plane fields.

        ``workers`` / ``workers_killed`` / ``pool`` describe *how* the vets
        were computed (wall-clock supervision, restarts, hedges) — they
        differ between workers=0 and workers=N by construction.  Everything
        else is virtual-time request semantics and must be byte-identical
        across worker counts, kill-storms included; the cross-mode
        determinism tests compare exactly this dict.
        """
        kept = self.to_dict()
        for execution_plane in ("workers", "workers_killed", "pool"):
            kept.pop(execution_plane, None)
        return kept


@dataclass
class _VirtualClient:
    """One scripted caller: its own RNG, HTTP identity and request memory."""

    index: int
    rng: random.Random
    http: HttpClient
    seen: list[str] = field(default_factory=list)
    sequence: int = 0


class ServingHarness:
    """Drives a service instance with a :class:`LoadScript`."""

    def __init__(self, internet: VirtualInternet, service: VettingService, seed: int = 0) -> None:
        self.internet = internet
        self.service = service
        self.seed = seed
        self.client = HttpClient(internet, client_id="load-driver")

    # -- scripted run ---------------------------------------------------------

    def _make_clients(self, count: int) -> list[_VirtualClient]:
        """Client 0 reuses the harness seed and identity verbatim, so a
        one-client run replays the exact pre-multi-client stream."""
        clients = []
        for index in range(max(count, 1)):
            if index == 0:
                rng, http = random.Random(self.seed), self.client
            else:
                rng = random.Random(self.seed + 1_000_003 * index)
                http = HttpClient(self.internet, client_id=f"load-driver-{index}")
            clients.append(_VirtualClient(index=index, rng=rng, http=http))
        return clients

    def _checkpoint_pool(self, report: ServingRunReport) -> None:
        """Between-wave supervision tick: drain stragglers, verify the book."""
        pool = self.service.pool
        if pool is None:
            return
        pool.reap()
        report.ledger_consistent = report.ledger_consistent and pool.ledger.consistent

    def run(self, script: LoadScript) -> ServingRunReport:
        report = ServingRunReport()
        report.clients = max(script.clients, 1)
        report.workers = self.service.pool.size if self.service.pool is not None else 0
        clients = self._make_clients(script.clients)
        names = sorted(self.service.directory)
        if not names:
            raise ValueError("service directory is empty")
        guilds = sorted(self.service._rosters)
        storm_round = max(script.requests_per_wave // 2, 0)
        for wave in range(script.waves):
            if script.restart_at_wave is not None and wave == script.restart_at_wave:
                self._checkpoint_pool(report)
                self.restart_service()
                recovered = self._await_ready()
                report.readyz_recovered = recovered
                if not recovered:
                    report.readiness_timeouts += 1
            for round_index in range(script.requests_per_wave):
                if (
                    script.kill_workers_at_wave is not None
                    and wave == script.kill_workers_at_wave
                    and round_index == storm_round
                    and self.service.pool is not None
                ):
                    report.workers_killed += len(
                        self.service.pool.kill_workers(script.kill_workers)
                    )
                for caller in clients:
                    self._client_request(report, caller, script, names, guilds)
            self.internet.clock.sleep(script.wave_gap)
            self._checkpoint_pool(report)
            self._request(report, "GET", "/healthz", count=False)
            self._request(report, "GET", "/readyz", count=False)
        self._checkpoint_pool(report)
        if self.service.pool is not None:
            report.pool = self.service.pool.to_dict()
        report.serving_metrics = self.service.metrics.to_dict()
        return report

    def _client_request(
        self,
        report: ServingRunReport,
        caller: _VirtualClient,
        script: LoadScript,
        names: list[str],
        guilds: list[str],
    ) -> None:
        caller.sequence += 1
        if script.audit_every and guilds and caller.sequence % script.audit_every == 0:
            self._request(report, "GET", f"/audit/{caller.rng.choice(guilds)}", http=caller.http)
            return
        if script.update_every and caller.seen and caller.sequence % script.update_every == 0:
            target = caller.rng.choice(caller.seen)
            self._request(report, "POST", f"/bots/{target}/update", http=caller.http)
            return
        if caller.seen and caller.rng.random() < script.repeat_fraction:
            name = caller.rng.choice(caller.seen)
        else:
            name = caller.rng.choice(names)
            if name not in caller.seen:
                caller.seen.append(name)
        self._request(report, "GET", f"/vet/{name}", http=caller.http)

    def restart_service(self) -> VettingService:
        """Kill the service and bring up a fresh instance on the same host.

        The verdict store is durable (a real deployment would keep it in a
        database); in-flight admission state and bulkhead leases die with
        the process.  The new instance re-registers on the internet and
        warms up before /readyz goes ready again.

        With a ``state_path`` the handoff goes through disk for real:
        shutdown persists the checksummed snapshot and the replacement
        scrub-loads it in its constructor — so a corrupted file surfaces
        here exactly as it would across a process restart (quarantine +
        cold start), instead of being papered over by an in-memory copy.
        """
        old = self.service
        durable = None
        if old.state_path is None:
            durable = {"cache": old.cache.state_dict(), "counters": old.metrics.counters_dict()}
        old.shutdown()  # the old pool's workers die with their service; persists --state
        replacement = VettingService(
            self.internet,
            old.directory,
            policy=old.policy,
            vetting_policy=old.pipeline.policy,
            seed=old.pipeline.seed,
            hostname=old.hostname,
            platform=old.guardian.platform if old.guardian is not None else None,
            workers=old.pool.size if old.pool is not None else 0,
            pool_policy=old.pool.policy if old.pool is not None else None,
            state_path=old.state_path,
        )
        if durable is not None:
            replacement.restore_state(durable)
        for guild, roster in old._rosters.items():
            replacement.register_guild(guild, roster)
        self.service = replacement
        return replacement

    def _await_ready(self, polls: int = 10) -> bool:
        """Poll /readyz, advancing past the warmup, until it reports ready.

        ``False`` means the service never went ready within the poll budget.
        :meth:`run` records that as a ``readiness_timeouts`` contract
        violation — callers must never treat it as a silent "proceed anyway".
        """
        step = max(self.service.policy.warmup / 2, 1.0)
        for _ in range(polls):
            try:
                response = self.client.get(f"https://{self.service.hostname}/readyz")
            except NetworkError:
                self.internet.clock.sleep(step)
                continue
            if response.status == 200:
                return True
            self.internet.clock.sleep(step)
        return False

    # -- one exchange, classified ---------------------------------------------

    def _request(
        self,
        report: ServingRunReport,
        method: str,
        path: str,
        count: bool = True,
        http: HttpClient | None = None,
    ) -> None:
        http = http or self.client
        url = f"https://{self.service.hostname}{path}"
        ledger_before = len(self.service.ledger.records) + self.service.ledger.dropped
        if count:
            report.requests_sent += 1
        try:
            if method == "POST":
                response = http.post(url)
            else:
                response = http.get(url)
        except NetworkError:
            if count:
                report.transport_errors += 1
            return
        if not count:
            return
        report.status_counts[response.status] = report.status_counts.get(response.status, 0) + 1
        body = response.body or ""
        chaos_injected = body.startswith("chaos:") or "captcha-challenge" in body
        if chaos_injected:
            report.chaos_walls += 1
            return
        if response.status == 200:
            try:
                payload = json.loads(body)
            except json.JSONDecodeError:
                report.truncated_bodies += 1  # chaos body truncation in transit
                return
            if "approved" in payload:
                report.verdicts += 1
                if payload.get("degraded"):
                    report.degraded_verdicts += 1
                if payload.get("stale"):
                    report.stale_verdicts += 1
                latency = float(payload.get("virtual_latency", 0.0))
                if payload.get("cache") in ("hit", "stale"):
                    report.cached_latencies.append(latency)
                else:
                    report.cold_latencies.append(latency)
            return
        if response.status == 429:
            report.service_shed += 1
            if "Retry-After" not in response.headers:
                report.shed_missing_retry_after += 1
            return
        if response.status >= 500:
            report.service_5xx += 1
            if "Retry-After" not in response.headers:
                report.shed_missing_retry_after += 1
            ledger_after = len(self.service.ledger.records) + self.service.ledger.dropped
            if ledger_after <= ledger_before:
                report.unexplained_5xx += 1
