"""Long-lived vetting service on the virtual internet.

The batch pipeline answers "what does the ecosystem look like today?";
this package answers the question platforms actually ask: "should I list
this bot *right now*?" — continuously, under load, and under the same
chaos profiles the batch pipeline survives.

- :mod:`repro.serving.budget` — per-request virtual-time deadline budgets.
- :mod:`repro.serving.admission` — bounded admission queue (shed with 429 +
  ``Retry-After``) and per-stage bulkheads.
- :mod:`repro.serving.cache` — verdict cache with update invalidation and
  stale-while-revalidate.
- :mod:`repro.serving.metrics` — serving counters and latency percentiles.
- :mod:`repro.serving.service` — the :class:`VettingService` virtual host.
- :mod:`repro.serving.workers` — supervised vet-worker pool (crash-tolerant
  delegation of the heavy stages to worker processes).
- :mod:`repro.serving.dispatch` — exactly-once dispatch ledger for the pool.
- :mod:`repro.serving.harness` — deterministic scripted load driver with
  K interleaved virtual clients and kill-storm scenarios.
"""

from repro.serving.admission import AdmissionQueue, Bulkhead, BulkheadSaturatedError
from repro.serving.budget import DeadlineBudget
from repro.serving.cache import VerdictCache
from repro.serving.dispatch import DispatchInvariantError, DispatchLedger, DispatchRecord
from repro.serving.metrics import LatencyReservoir, ServingMetrics
from repro.serving.service import ServicePolicy, VettingService
from repro.serving.workers import VetJob, WorkerPool, WorkerPoolPolicy
from repro.serving.harness import LoadScript, ServingHarness, ServingRunReport

__all__ = [
    "AdmissionQueue",
    "Bulkhead",
    "BulkheadSaturatedError",
    "DeadlineBudget",
    "DispatchInvariantError",
    "DispatchLedger",
    "DispatchRecord",
    "LatencyReservoir",
    "LoadScript",
    "ServicePolicy",
    "ServingHarness",
    "ServingMetrics",
    "ServingRunReport",
    "VerdictCache",
    "VetJob",
    "VettingService",
    "WorkerPool",
    "WorkerPoolPolicy",
]
