"""Supervised worker pool: vet compute in crash-tolerant worker processes.

The vetting service's expensive stages — the code review and the sandbox
honeypot — are pure functions of ``(bot profile, vetting policy, seed)``:
the sandbox builds its own platform from the seed on every call.  That
purity is what PR 7 exploited for sharded stages, and it is what lets the
serving layer delegate the same compute to a pool of worker processes
while keeping responses byte-identical to in-process execution: the
parent keeps *all* virtual-time decisions (admission, budgets, bulkhead
waits), the worker performs only the deterministic compute, and a worker
death therefore changes wall-clock supervision work but never the bytes
of a verdict.

The delegation contract mirrors :mod:`repro.core.parallel`: a picklable
:class:`VetJob` spec goes down the worker's pipe, a plain JSON-able dict
comes back up, and each worker rebuilds its :class:`VettingPipeline`
deterministically from the seed (once, then cached for its lifetime).

Supervision, in the resilience vocabulary the repo already speaks:

- **Crash detection** — a dead worker surfaces as a broken pipe on send,
  an EOF on receive, or a failed liveness probe in the wait loop;
  :data:`repro.core.crashpoints.SERVING_REGISTRY` points let the existing
  ``REPRO_CRASH_AT`` machinery kill workers mid-vet deterministically.
- **Replacement with warmup** — a crashed slot is respawned immediately;
  the recruit answers a warmup ping (building its pipeline as it does)
  before it is preferred for dispatch.
- **Per-worker circuit breakers** — a slot that keeps crashing goes dark
  for a virtual-time recovery window instead of eating every vet.
- **Re-dispatch** — a job orphaned by a death is re-sent (bounded times)
  to another worker; the :class:`~repro.serving.dispatch.DispatchLedger`
  keeps the exactly-once book.
- **Hedged retries** — a wall-clock straggler gets a duplicate attempt on
  a free worker; the first result wins, the loser is suppressed.
- **In-process fallback** — when the pool cannot produce a result (no
  usable worker, re-dispatch budget spent), ``execute`` returns ``None``
  and the service runs the stage itself: the whole pool dying degrades
  wall-clock latency, never availability.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass
from multiprocessing.connection import wait as connection_wait
from typing import Any

from repro.core.crashpoints import crashpoint
from repro.core.resilience import CircuitBreaker, CircuitOpenError, FaultLedger
from repro.core.vetting import VettingPipeline, VettingPolicy, VettingVerdict
from repro.discordsim.oauth import OAuthScope
from repro.discordsim.permissions import Permissions
from repro.ecosystem.generator import BotProfile, InviteStatus
from repro.ecosystem.policies import PolicySpec
from repro.ecosystem.repos import RepoKind, RepoSpec
from repro.serving.dispatch import DispatchLedger, DispatchRecord
from repro.serving.metrics import LatencyReservoir

#: ``job_id`` reserved for warmup pings (never enters the dispatch ledger).
PING_JOB_ID = 0


def bot_profile_to_payload(bot: BotProfile) -> dict[str, Any]:
    """Encode a bot profile as a plain JSON-able dict (the spec-down codec).

    ``BotProfile`` itself cannot cross a pipe: ``Permissions`` rejects the
    ``__setattr__`` pickling uses.  The codec flattens every enum and
    value-object to primitives; frozensets become sorted lists so two
    encodings of the same profile are byte-identical.
    """
    return {
        "index": bot.index,
        "client_id": bot.client_id,
        "name": bot.name,
        "developer_tag": bot.developer_tag,
        "tags": list(bot.tags),
        "description": bot.description,
        "guild_count": bot.guild_count,
        "votes": bot.votes,
        "invite_status": bot.invite_status.value,
        "permissions": bot.permissions.value,
        "scopes": [scope.value for scope in bot.scopes],
        "website_host": bot.website_host,
        "policy": {
            "present": bot.policy.present,
            "categories": sorted(bot.policy.categories),
            "generic": bot.policy.generic,
            "tailored": bot.policy.tailored,
            "link_valid": bot.policy.link_valid,
            "unlisted_synonyms": bot.policy.unlisted_synonyms,
        },
        "policy_text": bot.policy_text,
        "github": None
        if bot.github is None
        else {
            "kind": bot.github.kind.value,
            "owner": bot.github.owner,
            "name": bot.github.name,
            "language": bot.github.language,
            "has_check_api": bot.github.has_check_api,
            "files": dict(bot.github.files),
            "language_breakdown": dict(bot.github.language_breakdown),
        },
        "behavior": bot.behavior,
        "built_with": bot.built_with,
    }


def bot_profile_from_payload(payload: dict[str, Any]) -> BotProfile:
    """Rebuild a :class:`BotProfile` from its codec payload."""
    github = payload["github"]
    return BotProfile(
        index=payload["index"],
        client_id=payload["client_id"],
        name=payload["name"],
        developer_tag=payload["developer_tag"],
        tags=list(payload["tags"]),
        description=payload["description"],
        guild_count=payload["guild_count"],
        votes=payload["votes"],
        invite_status=InviteStatus(payload["invite_status"]),
        permissions=Permissions(payload["permissions"]),
        scopes=tuple(OAuthScope(value) for value in payload["scopes"]),
        website_host=payload["website_host"],
        policy=PolicySpec(
            present=payload["policy"]["present"],
            categories=frozenset(payload["policy"]["categories"]),
            generic=payload["policy"]["generic"],
            tailored=payload["policy"]["tailored"],
            link_valid=payload["policy"]["link_valid"],
            unlisted_synonyms=payload["policy"]["unlisted_synonyms"],
        ),
        policy_text=payload["policy_text"],
        github=None
        if github is None
        else RepoSpec(
            kind=RepoKind(github["kind"]),
            owner=github["owner"],
            name=github["name"],
            language=github["language"],
            has_check_api=github["has_check_api"],
            files=dict(github["files"]),
            language_breakdown=dict(github["language_breakdown"]),
        ),
        behavior=payload["behavior"],
        built_with=payload["built_with"],
    )


@dataclass
class VetJob:
    """Picklable spec for one unit of delegated vet compute.

    ``kind`` is ``"code"`` or ``"honeypot"`` (or ``"ping"`` for warmup).
    The bot rides along as its codec payload because serving directories
    mutate at runtime (``/bots/{name}/update``), so a worker cannot rebuild
    the *listing* from the seed the way it rebuilds the pipeline.
    """

    job_id: int
    kind: str
    bot: dict[str, Any] | None = None
    observation: float | None = None


def execute_vet_job(pipeline: VettingPipeline, job: VetJob) -> dict[str, Any]:
    """Run one job's compute; returns the JSON-able result payload.

    Shared by the worker main loop and the parent's in-process fallback so
    the two execution paths cannot drift.
    """
    if job.kind == "ping":
        return {"job_id": job.job_id, "ok": True, "kind": "ping"}
    assert job.bot is not None
    crashpoint("serving.worker.mid_vet")
    bot = bot_profile_from_payload(job.bot)
    verdict = VettingVerdict(bot_name=bot.name, approved=True)
    consumed = 0.0
    if job.kind == "code":
        pipeline.review_code(bot, verdict)
    elif job.kind == "honeypot":
        consumed = pipeline.review_dynamic(bot, verdict, observation=job.observation)
    else:
        raise ValueError(f"unknown vet job kind {job.kind!r}")
    crashpoint("serving.worker.before_result")
    return {
        "job_id": job.job_id,
        "ok": True,
        "kind": job.kind,
        "approved": verdict.approved,
        "reasons": list(verdict.reasons),
        "consumed": consumed,
    }


def vet_worker_main(worker_id: int, seed: int, policy: VettingPolicy, conn) -> None:
    """Worker process entry: rebuild the pipeline from the seed, serve jobs.

    The pipeline is built once (the warmup ping usually pays that cost)
    and reused for every job.  Any exception inside a job becomes an
    ``ok=False`` payload — the worker survives bad jobs; only real crashes
    (``REPRO_CRASH_AT``, SIGKILL) take it down.
    """
    pipeline = VettingPipeline(policy, seed=seed)
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):
            break
        if job is None:
            break
        try:
            payload = execute_vet_job(pipeline, job)
        except Exception as error:  # the job failed; the worker did not
            payload = {
                "job_id": job.job_id,
                "ok": False,
                "kind": job.kind,
                "error": f"{type(error).__name__}: {error}",
            }
        try:
            conn.send(payload)
        except (BrokenPipeError, OSError):
            break


@dataclass(frozen=True)
class WorkerPoolPolicy:
    """Supervision knobs.  Wall-clock values govern *detection* only —
    virtual-time request semantics never depend on them."""

    #: Wall seconds per wait tick (liveness probes run at this cadence).
    poll_interval: float = 0.02
    #: Wall seconds before a straggling job is hedged to a free worker.
    hedge_after: float = 5.0
    #: Wall seconds before a job's carriers are declared wedged and killed.
    job_timeout: float = 60.0
    #: Re-dispatches per job before abandoning to the in-process fallback.
    max_redispatches: int = 2
    #: Consecutive crashes that open a worker slot's circuit breaker.
    breaker_failures: int = 3
    #: Virtual seconds a tripped slot stays dark before a probe dispatch.
    breaker_recovery: float = 1_800.0


class _Worker:
    """One supervised slot: a process, its pipe, and its vital signs."""

    def __init__(self, worker_id: int, seed: int, policy: VettingPolicy, context) -> None:
        self.worker_id = worker_id
        self.seed = seed
        self.vet_policy = policy
        self.context = context
        self.state = "warming"  # warming -> ready; "dead" between crash and respawn
        self.outstanding: int | None = None  # job_id currently on this worker
        self.outstanding_since: float = 0.0  # wall clock of the dispatch
        self.vets_completed = 0
        self.crashes = 0
        self.wall_ms = LatencyReservoir(limit=1024)
        #: Parent virtual time of the last message from this slot.
        self.last_heartbeat: float = 0.0
        self.process = None
        self.conn = None
        self.spawn()

    def spawn(self) -> None:
        parent_conn, child_conn = self.context.Pipe()
        process = self.context.Process(
            target=vet_worker_main,
            args=(self.worker_id, self.seed, self.vet_policy, child_conn),
            daemon=True,
            name=f"vet-worker-{self.worker_id}",
        )
        process.start()
        child_conn.close()
        self.process = process
        self.conn = parent_conn
        self.state = "warming"
        self.outstanding = None
        try:
            parent_conn.send(VetJob(job_id=PING_JOB_ID, kind="ping"))
        except (BrokenPipeError, OSError):
            self.state = "dead"

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def send(self, job: VetJob) -> bool:
        try:
            self.conn.send(job)
        except (BrokenPipeError, OSError):
            return False
        return True


class WorkerPool:
    """N supervised vet workers behind an exactly-once dispatch ledger."""

    def __init__(
        self,
        size: int,
        seed: int,
        vetting_policy: VettingPolicy,
        clock,
        fault_ledger: FaultLedger | None = None,
        policy: WorkerPoolPolicy | None = None,
    ) -> None:
        if size < 1:
            raise ValueError("worker pool size must be >= 1")
        self.size = size
        self.seed = seed
        self.vetting_policy = vetting_policy
        self.clock = clock
        self.policy = policy or WorkerPoolPolicy()
        self.faults = fault_ledger if fault_ledger is not None else FaultLedger()
        self.ledger = DispatchLedger()
        methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context("fork" if "fork" in methods else None)
        self._workers = [
            _Worker(index, seed, vetting_policy, self._context) for index in range(size)
        ]
        self._cursor = 0
        self.restarts = 0
        self.fallbacks = 0
        self._breakers = [
            CircuitBreaker(
                clock,
                failure_threshold=self.policy.breaker_failures,
                recovery_time=self.policy.breaker_recovery,
            )
            for _ in range(size)
        ]
        self._closed = False

    # -- dispatch selection --------------------------------------------------

    def _usable(self, worker: _Worker) -> bool:
        if worker.outstanding is not None or not worker.alive:
            return False
        try:
            self._breakers[worker.worker_id].check(f"vet-worker-{worker.worker_id}")
        except CircuitOpenError:
            return False
        return True

    def _pick(self, exclude: set[int] | None = None) -> _Worker | None:
        """Round-robin over usable slots, preferring warmed-up workers."""
        exclude = exclude or set()
        ready: list[_Worker] = []
        warming: list[_Worker] = []
        for offset in range(self.size):
            worker = self._workers[(self._cursor + offset) % self.size]
            if worker.worker_id in exclude or not self._usable(worker):
                continue
            (ready if worker.state == "ready" else warming).append(worker)
        chosen = ready[0] if ready else (warming[0] if warming else None)
        if chosen is not None:
            self._cursor = (chosen.worker_id + 1) % self.size
        return chosen

    # -- the supervised execute ----------------------------------------------

    def execute(self, kind: str, bot: BotProfile, key: str, observation: float | None = None) -> dict | None:
        """Run one vet job on the pool; ``None`` means "fall back in-process".

        Synchronous from the caller's point of view: the supervision loop
        (liveness probes, re-dispatch, hedging, deadline watchdog) runs in
        wall-clock time while the caller's virtual-time request state is
        untouched — which is what keeps worker crashes invisible in the
        response bytes.
        """
        if self._closed:
            self.fallbacks += 1
            return None
        worker = self._pick()
        if worker is None:
            self.fallbacks += 1
            return None
        job = self.ledger.open(key, kind, bot.name, worker.worker_id, self.clock.now())
        spec = VetJob(
            job_id=job.job_id,
            kind=kind,
            bot=bot_profile_to_payload(bot),
            observation=observation,
        )
        if not self._dispatch_to(worker, spec):
            self._on_crash(worker, "dispatch")
            if not self._redispatch(job, spec):
                return self._give_up(job)
        started = time.monotonic()
        while True:
            carriers = [w for w in self._workers if w.outstanding == job.job_id]
            if not carriers:
                if not self._redispatch(job, spec):
                    return self._give_up(job)
                continue
            result = self._await_tick(carriers, job)
            if result is not None:
                return result if result.get("ok") else self._job_failed(job, result)
            elapsed = time.monotonic() - started
            if not job.hedged and elapsed >= self.policy.hedge_after:
                self._try_hedge(job, spec)
            if elapsed >= self.policy.job_timeout:
                # Recompute: _await_tick may have replaced a crashed carrier
                # already, and the recruit must not be killed for its
                # predecessor's sins.
                for carrier in [w for w in self._workers if w.outstanding == job.job_id]:
                    if carrier.alive:
                        self._kill_slot(carrier)
                    self._on_crash(carrier, "deadline")
                if not self._redispatch(job, spec):
                    return self._give_up(job)
                started = time.monotonic()

    def _await_tick(self, carriers: list[_Worker], job: DispatchRecord) -> dict | None:
        """One wait quantum: drain ready pipes, probe liveness.  Returns the
        winning result if it arrived, else None.

        Waits on every busy worker, not just the job's carriers, so a hedge
        loser still chewing on an already-completed job gets drained (and
        its slot freed) the moment it finishes instead of idling until the
        next :meth:`reap`.
        """
        busy = [w for w in self._workers if w.outstanding is not None and w.alive]
        ready = connection_wait([w.conn for w in busy], timeout=self.policy.poll_interval)
        winner: dict | None = None
        for worker in busy:
            if worker.conn not in ready:
                continue
            payload = self._receive(worker)
            if payload is None:
                continue  # ping, zombie, or EOF — all routed in _receive
            if payload.get("job_id") != job.job_id:
                continue
            worker.outstanding = None
            worker.wall_ms.record((time.monotonic() - worker.outstanding_since) * 1000.0)
            if self.ledger.complete(job.job_id, worker.worker_id, self.clock.now()):
                self._breakers[worker.worker_id].record_success()
                worker.vets_completed += 1
                winner = payload
        if winner is not None:
            return winner
        for worker in carriers:
            if not worker.alive:
                self._on_crash(worker, "liveness")
        return None

    def _receive(self, worker: _Worker) -> dict | None:
        """Read one message; handles pings, zombies and EOF-on-crash."""
        try:
            payload = worker.conn.recv()
        except (EOFError, OSError):
            self._on_crash(worker, "receive")
            return None
        worker.last_heartbeat = self.clock.now()
        job_id = payload.get("job_id", PING_JOB_ID)
        if job_id == PING_JOB_ID:
            worker.state = "ready"
            return None
        if worker.outstanding == job_id and job_id not in self.ledger.in_flight:
            # The losing side of a hedge (or a replaced slot's leftover):
            # the job already completed elsewhere; suppress and free the slot.
            worker.outstanding = None
            self.ledger.complete(job_id, worker.worker_id, self.clock.now())
            worker.state = "ready"
            return None
        return payload

    def _dispatch_to(self, worker: _Worker, spec: VetJob) -> bool:
        if not worker.alive or not worker.send(spec):
            return False
        worker.outstanding = spec.job_id
        worker.outstanding_since = time.monotonic()
        return True

    def _redispatch(self, job: DispatchRecord, spec: VetJob) -> bool:
        while job.redispatches < self.policy.max_redispatches:
            worker = self._pick()
            if worker is None:
                return False
            self.ledger.redispatch(job.job_id, worker.worker_id)
            if self._dispatch_to(worker, spec):
                return True
            self._on_crash(worker, "redispatch")
        return False

    def _try_hedge(self, job: DispatchRecord, spec: VetJob) -> None:
        worker = self._pick(exclude=set(job.workers))
        if worker is None:
            return
        self.ledger.hedge(job.job_id, worker.worker_id)
        if not self._dispatch_to(worker, spec):
            self._on_crash(worker, "hedge-dispatch")

    def _give_up(self, job: DispatchRecord) -> None:
        self.ledger.abandon(job.job_id)
        self.fallbacks += 1
        self.ledger.verify()
        return None

    def _job_failed(self, job: DispatchRecord, payload: dict) -> None:
        """The worker survived but the vet itself raised: record and fall back."""
        self.faults.record(
            "serving.pool",
            f"vet-worker-{payload.get('worker_id', '?')}",
            "WorkerJobError",
            self.clock.now(),
            detail=f"{job.kind} for {job.bot}: {payload.get('error', 'unknown')}",
        )
        self.fallbacks += 1
        return None

    # -- crash handling --------------------------------------------------------

    def _on_crash(self, worker: _Worker, where: str) -> None:
        """A slot died: account it, trip its breaker, respawn a recruit.

        The orphaned job (if any) stays in the dispatch ledger's in-flight
        set — the execute loop is responsible for re-dispatching it, so the
        exactly-once book never loses a vet to a dead worker.
        """
        if worker.state == "dead":
            return
        orphan = worker.outstanding
        worker.state = "dead"
        worker.crashes += 1
        self.faults.record(
            "serving.pool",
            f"vet-worker-{worker.worker_id}",
            "WorkerCrashed",
            self.clock.now(),
            detail=f"detected at {where}; orphaned job: {orphan if orphan is not None else 'none'}",
        )
        self._breakers[worker.worker_id].record_failure()
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process is not None:
            worker.process.join(timeout=0.5)
        if not self._closed:
            worker.spawn()
            self.restarts += 1

    def _kill_slot(self, worker: _Worker) -> None:
        try:
            os.kill(worker.process.pid, signal.SIGKILL)
        except (OSError, TypeError):
            pass
        if worker.process is not None:
            worker.process.join(timeout=1.0)

    # -- chaos entry point -----------------------------------------------------

    def kill_workers(self, count: int) -> list[int]:
        """SIGKILL ``count`` live workers (lowest slots first) — the
        kill-storm scenario.  Detection and replacement happen through the
        ordinary supervision path, not here."""
        killed: list[int] = []
        for worker in self._workers:
            if len(killed) >= count:
                break
            if worker.alive:
                self._kill_slot(worker)
                killed.append(worker.worker_id)
        return killed

    # -- background supervision tick -------------------------------------------

    def reap(self) -> None:
        """Drain stale results, sweep for silent deaths, verify the book.

        Called between load waves (and safe any time the pool is idle):
        hedge losers parked on busy slots get suppressed here, and workers
        that died while unobserved are replaced before the next burst.
        """
        if self._closed:
            return
        while True:
            ready = connection_wait(
                [w.conn for w in self._workers if w.alive], timeout=0
            )
            if not ready:
                break
            for worker in self._workers:
                if worker.conn in ready:
                    self._receive(worker)
        for worker in self._workers:
            if not worker.alive:
                self._on_crash(worker, "reap")
        self.ledger.verify()

    # -- health ---------------------------------------------------------------

    @property
    def status(self) -> str:
        """pool-healthy / pool-degraded / pool-down, for the ladder."""
        usable = 0
        pristine = 0
        for worker in self._workers:
            breaker_ok = True
            try:
                self._breakers[worker.worker_id].check(f"vet-worker-{worker.worker_id}")
            except CircuitOpenError:
                breaker_ok = False
            if worker.alive and breaker_ok:
                usable += 1
                if worker.state == "ready" and worker.crashes == 0:
                    pristine += 1
        if usable == 0:
            return "down"
        if pristine == self.size and self.restarts == 0:
            return "healthy"
        return "degraded"

    def heartbeat_lag(self, worker_id: int) -> float:
        """Virtual seconds since the slot last spoke."""
        return self.clock.now() - self._workers[worker_id].last_heartbeat

    def to_dict(self) -> dict[str, Any]:
        return {
            "workers": self.size,
            "status": self.status,
            "restarts": self.restarts,
            "fallbacks": self.fallbacks,
            "dispatch": self.ledger.to_dict(),
            "per_worker": [
                {
                    "worker": worker.worker_id,
                    "state": worker.state if worker.alive else "dead",
                    "vets": worker.vets_completed,
                    "crashes": worker.crashes,
                    "breaker": self._breakers[worker.worker_id].state.value,
                    "wall_ms_p99": round(worker.wall_ms.percentile(99.0), 3),
                    "heartbeat_lag": round(self.heartbeat_lag(worker.worker_id), 3),
                }
                for worker in self._workers
            ],
        }

    # -- lifecycle -------------------------------------------------------------

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            if worker.process is not None:
                worker.process.join(timeout=1.0)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
