"""Verdict cache with update invalidation and stale-while-revalidate.

A verdict is cached against a *fingerprint* of the submission it reviewed
— permissions, scopes, policy, repo link, tags.  When the listing changes
(the longitudinal escalation case: a sleeper quietly requesting more
permissions), the fingerprint changes and the cached verdict is no longer
*fresh*: the next request forces a re-vet.  Under brownout the service may
still serve the superseded verdict explicitly marked ``stale=True`` while
the refresh happens — an honest degraded answer instead of a failure.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.ecosystem.generator import BotProfile


def bot_fingerprint(bot: BotProfile) -> str:
    """A stable digest of everything vetting actually reviews."""
    material = "|".join(
        (
            bot.name,
            str(bot.permissions.value),
            ",".join(scope.value for scope in bot.scopes),
            bot.invite_status.value,
            str(sorted(bot.tags)),
            str(bot.policy.present),
            str(sorted(bot.policy.categories)),
            str(bot.policy.link_valid),
            bot.github_url or "",
            bot.website_host or "",
        )
    )
    return f"{zlib.crc32(material.encode('utf-8')):08x}"


@dataclass
class CacheEntry:
    """One cached verdict plus the metadata freshness decisions need."""

    payload: dict[str, Any]
    fingerprint: str
    stored_at: float
    #: Set when the directory learned of an update whose re-vet has not
    #: completed yet (the stale-while-revalidate window).
    superseded: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "payload": dict(self.payload),
            "fingerprint": self.fingerprint,
            "stored_at": self.stored_at,
            "superseded": self.superseded,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "CacheEntry":
        return cls(
            payload=dict(raw["payload"]),
            fingerprint=raw["fingerprint"],
            stored_at=raw["stored_at"],
            superseded=raw.get("superseded", False),
        )


@dataclass
class VerdictCache:
    """Bounded verdict store keyed by bot name.

    ``lookup`` classifies an entry as ``"fresh"`` (fingerprint matches and
    TTL not expired), ``"stale"`` (superseded by an update or past TTL —
    servable only as an explicitly-marked stale answer), or a miss
    (``None``).  Eviction is LRU: every lookup hit refreshes the entry's
    recency (dict order is the recency order), and past ``max_entries``
    the least-recently-used entry is evicted and counted — under pressure
    the cache sheds cold verdicts, never the hottest one that merely
    happened to be stored first.
    """

    ttl: float = 7 * 86_400.0
    max_entries: int = 10_000
    entries: dict[str, CacheEntry] = field(default_factory=dict)
    hits: int = 0
    stale_hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    def lookup(self, bot: BotProfile, now: float) -> tuple[str, CacheEntry] | None:
        entry = self.entries.get(bot.name)
        if entry is None:
            self.misses += 1
            return None
        # LRU refresh: a stale hit counts too — a verdict being served (even
        # marked stale) is still hotter than one nobody asks about.
        self.entries[bot.name] = self.entries.pop(bot.name)
        fresh = (
            not entry.superseded
            and entry.fingerprint == bot_fingerprint(bot)
            and now - entry.stored_at < self.ttl
        )
        if fresh:
            self.hits += 1
            return ("fresh", entry)
        return ("stale", entry)

    def count_stale_hit(self) -> None:
        self.stale_hits += 1

    def count_miss(self) -> None:
        self.misses += 1

    def store(self, bot: BotProfile, payload: dict[str, Any], now: float) -> CacheEntry:
        entry = CacheEntry(payload=dict(payload), fingerprint=bot_fingerprint(bot), stored_at=now)
        if bot.name in self.entries:
            # Re-store refreshes recency as well as content.
            del self.entries[bot.name]
        elif len(self.entries) >= self.max_entries:
            coldest = next(iter(self.entries))
            del self.entries[coldest]
            self.evictions += 1
        self.entries[bot.name] = entry
        return entry

    def invalidate(self, bot_name: str) -> bool:
        """Mark a bot's verdict superseded (listing updated); True if cached."""
        entry = self.entries.get(bot_name)
        if entry is None:
            return False
        entry.superseded = True
        self.invalidations += 1
        return True

    def drop(self, bot_name: str) -> None:
        self.entries.pop(bot_name, None)

    def __len__(self) -> int:
        return len(self.entries)

    # -- restart support ----------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        return {
            "entries": {name: entry.to_dict() for name, entry in self.entries.items()},
            "counters": {
                "hits": self.hits,
                "stale_hits": self.stale_hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
            },
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        self.entries = {name: CacheEntry.from_dict(raw) for name, raw in state.get("entries", {}).items()}
        counters = state.get("counters", {})
        for name in ("hits", "stale_hits", "misses", "invalidations", "evictions"):
            setattr(self, name, counters.get(name, 0))
