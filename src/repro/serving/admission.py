"""Admission control and per-stage bulkheads for the vetting service.

Both structures model occupancy in *virtual time*: work in the simulation
is synchronous, so "a request is still being served" is represented as a
lease that expires at the request's modeled completion instant.  A burst of
requests arriving inside a narrow virtual window therefore piles leases up
exactly the way concurrent requests would pile up on a real server — and
the queue sheds deterministically once the bound is hit.

- :class:`AdmissionQueue` — one bounded queue in front of the whole
  service.  Beyond ``capacity`` in-flight requests, new arrivals are shed
  with an explicit ``429`` and an honest ``Retry-After`` (the virtual
  seconds until the earliest in-flight request drains).  The queue never
  grows without bound.
- :class:`Bulkhead` — a per-stage concurrency limit.  Expensive stages
  (the sandbox honeypot) get few slots, cheap stages many, so a stalled
  honeypot saturates *its own* compartment and cheap traceability-only
  requests keep flowing.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class BulkheadSaturatedError(Exception):
    """Every slot is leased and the wait would blow the caller's budget."""

    def __init__(self, stage: str, wait: float) -> None:
        super().__init__(f"bulkhead {stage!r} saturated; next slot frees in {wait:.1f}s")
        self.stage = stage
        self.wait = wait


@dataclass
class Lease:
    """One occupied bulkhead slot: when the stage started, when it frees.

    The handle is how a caller shrinks *its own* lease after the real cost
    is known — shrinking "the most recent lease" is wrong the moment two
    requests interleave their acquires.
    """

    start: float
    expiry: float


@dataclass
class Bulkhead:
    """A fixed pool of virtual-time slots for one stage.

    ``acquire(start, cost, max_wait)`` finds the earliest instant at or
    after ``start`` when a slot is free, leases it for ``cost`` seconds and
    returns the :class:`Lease` handle (whose ``start`` is the instant the
    stage actually starts).  If the wait for a slot exceeds ``max_wait``
    it raises :class:`BulkheadSaturatedError` instead — the caller then
    degrades (skips the stage) rather than queue past its deadline.
    """

    stage: str
    limit: int
    #: Currently-occupied slots.
    leases: list[Lease] = field(default_factory=list)
    acquired: int = 0
    saturations: int = 0

    def __post_init__(self) -> None:
        if self.limit < 1:
            raise ValueError("bulkhead limit must be >= 1")

    def in_flight(self, now: float) -> int:
        return sum(1 for lease in self.leases if lease.expiry > now)

    def _purge(self, now: float) -> None:
        self.leases = [lease for lease in self.leases if lease.expiry > now]

    def acquire(self, start: float, cost: float, max_wait: float) -> Lease:
        """Lease a slot; the returned handle's ``start`` is the actual start."""
        self._purge(start)
        if len(self.leases) < self.limit:
            lease = Lease(start=start, expiry=start + cost)
            self.leases.append(lease)
            self.acquired += 1
            return lease
        earliest = min(self.leases, key=lambda lease: lease.expiry)
        wait = earliest.expiry - start
        if wait > max_wait:
            self.saturations += 1
            raise BulkheadSaturatedError(self.stage, wait)
        self.leases.remove(earliest)
        lease = Lease(start=earliest.expiry, expiry=earliest.expiry + cost)
        self.leases.append(lease)
        self.acquired += 1
        return lease

    def release(self, lease: Lease, lease_end: float) -> None:
        """Shrink ``lease`` (actual cost < estimated cost) by identity.

        A lease never grows here: overruns keep the estimated expiry, so a
        stage that blew its estimate cannot retroactively push waiters back.
        """
        lease.expiry = min(lease.expiry, lease_end)


class ShedDecision:
    """Why (and for how long) an arrival was turned away."""

    def __init__(self, retry_after: float, reason: str) -> None:
        self.retry_after = retry_after
        self.reason = reason


@dataclass
class AdmissionQueue:
    """Bounded in-flight set with explicit load shedding.

    ``admit(now)`` purges drained requests and either admits (returning
    ``None``) or returns a :class:`ShedDecision` carrying the honest
    ``Retry-After``.  ``settle(finish)`` records the admitted request's
    modeled completion so later arrivals see it as in-flight until then.
    """

    capacity: int
    #: Modeled completion instants of admitted, not-yet-drained requests.
    in_flight: list[float] = field(default_factory=list)
    admitted: int = 0
    shed: int = 0
    #: Minimum Retry-After hint, so clients never busy-spin on a 429.
    min_retry_after: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("queue capacity must be >= 1")

    def depth(self, now: float) -> int:
        return sum(1 for finish in self.in_flight if finish > now)

    def _purge(self, now: float) -> None:
        self.in_flight = [finish for finish in self.in_flight if finish > now]

    def admit(self, now: float) -> ShedDecision | None:
        self._purge(now)
        if len(self.in_flight) >= self.capacity:
            self.shed += 1
            earliest = min(self.in_flight)
            retry_after = max(earliest - now, self.min_retry_after)
            return ShedDecision(retry_after, f"admission queue full ({self.capacity} in flight)")
        self.admitted += 1
        return None

    def settle(self, finish: float) -> None:
        """Record an admitted request's modeled completion instant."""
        self.in_flight.append(finish)

    def clear(self) -> None:
        self.in_flight.clear()
