"""Exactly-once dispatch accounting for the vet-worker pool.

Every piece of vet compute the service hands to a worker process is opened
here first, keyed by ``bot fingerprint + listing epoch + stage kind``.  The
ledger then tracks the job through whatever the pool does to keep it alive
— re-dispatch after a worker death, a hedged copy for a straggler — and
guarantees the serving layer one thing: **each job reaches exactly one
terminal state** (a delivered result, or an explicit abandonment to the
in-process fallback), no matter how many workers died or raced under it.

The invariant the kill-storm tests assert every tick::

    opened == completed + abandoned + len(in_flight)

A hedge or re-dispatch adds an *attempt*, never a second job; a result
arriving for a job that already completed (the losing side of a hedge, or
a zombie from a replaced worker) is suppressed and counted, never applied
twice.  :meth:`DispatchLedger.verify` recomputes the invariant from the
raw counters and raises :class:`DispatchInvariantError` if the book is
open — a supervisor bug must abort loudly, not mis-serve quietly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


class DispatchInvariantError(AssertionError):
    """The dispatch book does not balance: a vet was lost or double-counted."""


@dataclass
class DispatchRecord:
    """One delegated job's life, from first send to terminal state."""

    job_id: int
    key: str
    kind: str
    bot: str
    #: Virtual time of the first dispatch (parent clock).
    dispatched_at: float
    #: Every worker the job was ever sent to, in dispatch order.
    workers: list[int] = field(default_factory=list)
    #: Dispatch attempts: 1 + re-dispatches + hedges.
    attempts: int = 1
    redispatches: int = 0
    hedged: bool = False
    state: str = "in_flight"  # in_flight | completed | abandoned
    #: Worker whose result won (completed jobs only).
    completed_by: int | None = None
    completed_at: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "key": self.key,
            "kind": self.kind,
            "bot": self.bot,
            "dispatched_at": self.dispatched_at,
            "workers": list(self.workers),
            "attempts": self.attempts,
            "redispatches": self.redispatches,
            "hedged": self.hedged,
            "state": self.state,
        }


class DispatchLedger:
    """In-flight tracking + exactly-once completion for delegated vets."""

    def __init__(self) -> None:
        self._next_job_id = 1
        self.in_flight: dict[int, DispatchRecord] = {}
        self.opened = 0
        self.completed = 0
        self.abandoned = 0
        self.redispatched = 0
        self.hedges = 0
        self.duplicates_suppressed = 0
        self.verifications = 0

    # -- job life -----------------------------------------------------------

    def open(self, key: str, kind: str, bot: str, worker_id: int, now: float) -> DispatchRecord:
        """A job leaves the parent for ``worker_id``; returns its record."""
        record = DispatchRecord(
            job_id=self._next_job_id,
            key=key,
            kind=kind,
            bot=bot,
            dispatched_at=now,
            workers=[worker_id],
        )
        self._next_job_id += 1
        self.in_flight[record.job_id] = record
        self.opened += 1
        return record

    def redispatch(self, job_id: int, worker_id: int) -> DispatchRecord:
        """The job's only live attempt died; it is re-sent to ``worker_id``."""
        record = self._live(job_id, "redispatch")
        record.workers.append(worker_id)
        record.attempts += 1
        record.redispatches += 1
        self.redispatched += 1
        return record

    def hedge(self, job_id: int, worker_id: int) -> DispatchRecord:
        """A straggler gets a duplicate attempt on ``worker_id``; first wins."""
        record = self._live(job_id, "hedge")
        record.workers.append(worker_id)
        record.attempts += 1
        record.hedged = True
        self.hedges += 1
        return record

    def complete(self, job_id: int, worker_id: int, now: float) -> bool:
        """A result arrived.  True if it wins; False if it is a duplicate
        (or a zombie for a job already abandoned) and must be suppressed."""
        record = self.in_flight.pop(job_id, None)
        if record is None:
            self.duplicates_suppressed += 1
            return False
        record.state = "completed"
        record.completed_by = worker_id
        record.completed_at = now
        self.completed += 1
        return True

    def abandon(self, job_id: int) -> DispatchRecord:
        """The pool gives up on the job; the caller falls back in-process."""
        record = self.in_flight.pop(job_id, None)
        if record is None:
            raise DispatchInvariantError(f"abandon of job {job_id} which is not in flight")
        record.state = "abandoned"
        self.abandoned += 1
        return record

    def _live(self, job_id: int, action: str) -> DispatchRecord:
        record = self.in_flight.get(job_id)
        if record is None:
            raise DispatchInvariantError(f"{action} of job {job_id} which is not in flight")
        return record

    # -- the invariant ------------------------------------------------------

    def verify(self) -> None:
        """Raise unless every opened job is completed, abandoned or in flight."""
        self.verifications += 1
        accounted = self.completed + self.abandoned + len(self.in_flight)
        if self.opened != accounted:
            raise DispatchInvariantError(
                f"dispatch book open: opened={self.opened} != completed={self.completed} "
                f"+ abandoned={self.abandoned} + in_flight={len(self.in_flight)}"
            )

    @property
    def consistent(self) -> bool:
        try:
            self.verify()
        except DispatchInvariantError:
            return False
        return True

    def to_dict(self) -> dict[str, Any]:
        return {
            "opened": self.opened,
            "completed": self.completed,
            "abandoned": self.abandoned,
            "in_flight": len(self.in_flight),
            "redispatched": self.redispatched,
            "hedges": self.hedges,
            "duplicates_suppressed": self.duplicates_suppressed,
            "verifications": self.verifications,
            "consistent": self.consistent,
        }
