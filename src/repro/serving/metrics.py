"""Serving-side instrumentation: counters and latency percentiles.

Latencies are *virtual-time* request latencies (arrival to modeled
completion), kept in bounded reservoirs per endpoint so a multi-epoch
service run reports p50/p99 in constant memory.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any


class LatencyReservoir:
    """A bounded ring of latency samples with percentile queries."""

    def __init__(self, limit: int = 4096) -> None:
        self.samples: deque[float] = deque(maxlen=limit)
        self.recorded = 0

    def record(self, value: float) -> None:
        self.samples.append(value)
        self.recorded += 1

    def percentile(self, p: float) -> float:
        """The p-th percentile (0..100) of the retained window; 0 if empty."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def to_dict(self) -> dict[str, float]:
        return {
            "count": self.recorded,
            "p50": round(self.percentile(50.0), 6),
            "p99": round(self.percentile(99.0), 6),
        }


@dataclass
class ServingMetrics:
    """Everything the service did, in one serializable bundle."""

    requests_total: int = 0
    served: int = 0
    shed: int = 0
    not_found: int = 0
    errors_5xx: int = 0
    degraded: int = 0
    stale_served: int = 0
    revalidations: int = 0
    honeypot_skips: int = 0
    latency: dict[str, LatencyReservoir] = field(default_factory=dict)

    def observe_latency(self, endpoint: str, virtual_seconds: float) -> None:
        reservoir = self.latency.get(endpoint)
        if reservoir is None:
            reservoir = self.latency[endpoint] = LatencyReservoir()
        reservoir.record(virtual_seconds)

    @property
    def shed_rate(self) -> float:
        if self.requests_total == 0:
            return 0.0
        return self.shed / self.requests_total

    def to_dict(self) -> dict[str, Any]:
        return {
            "requests_total": self.requests_total,
            "served": self.served,
            "shed": self.shed,
            "not_found": self.not_found,
            "errors_5xx": self.errors_5xx,
            "degraded": self.degraded,
            "stale_served": self.stale_served,
            "revalidations": self.revalidations,
            "honeypot_skips": self.honeypot_skips,
            "shed_rate": round(self.shed_rate, 6),
            "latency": {endpoint: reservoir.to_dict() for endpoint, reservoir in sorted(self.latency.items())},
        }

    def counters_dict(self) -> dict[str, int]:
        return {
            "requests_total": self.requests_total,
            "served": self.served,
            "shed": self.shed,
            "not_found": self.not_found,
            "errors_5xx": self.errors_5xx,
            "degraded": self.degraded,
            "stale_served": self.stale_served,
            "revalidations": self.revalidations,
            "honeypot_skips": self.honeypot_skips,
        }

    def restore_counters(self, counters: dict[str, int]) -> None:
        for name, value in counters.items():
            if hasattr(self, name) and isinstance(value, int):
                setattr(self, name, value)

    def summary_line(self) -> str:
        return (
            f"served {self.served}/{self.requests_total} "
            f"(shed {self.shed}, degraded {self.degraded}, stale {self.stale_served}, "
            f"5xx {self.errors_5xx})"
        )
