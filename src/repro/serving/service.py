"""The long-lived vetting service: the pipeline as an API under load.

:class:`VettingService` is a :class:`~repro.web.server.VirtualHost` that
platforms query before listing or installing a bot — the paper's
"continuous rigorous vetting process" stood up as a request/response gate
on the virtual internet:

- ``GET/POST /vet/{bot}`` — vet one submission through the pipeline stages.
- ``GET/POST /audit/{guild}`` — vet every bot on a registered guild roster
  (or run the :class:`~repro.core.guardian.GuildGuardian` when the service
  is attached to a platform).
- ``POST /bots/{bot}/update`` — listing changed: invalidate the cached
  verdict so the next request re-vets.
- ``GET /healthz`` / ``GET /readyz`` — liveness and readiness, reporting
  queue depth, shed rate, breaker states and degraded-mode status.

Every request runs under the serving-robustness stack: a bounded admission
queue (shed with ``429 Retry-After``, never unbounded growth), a
per-request virtual-time deadline budget propagated through the stages
(an unaffordable honeypot is skipped-with-degradation, not waited for),
per-stage bulkheads (a stalled sandbox cannot starve cheap static-only
requests), circuit breakers + retry budgets on the service's own outbound
crawling, and a stale-while-revalidate verdict cache so brownouts serve
the last known verdict marked ``stale`` instead of failing.

Degradation ladder: full vet → skip-honeypot (partial verdict,
``degraded=True``) → cached-stale (``stale=True``) → shed (429).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core.guardian import GuildGuardian
from repro.core.resilience import (
    CircuitBreakerRegistry,
    CircuitOpenError,
    FaultLedger,
    RetryBudget,
    RetryPolicy,
)
from repro.core.storage import RecoveryManager, atomic_write_json, payload_checksum
from repro.core.vetting import VettingPipeline, VettingPolicy, VettingVerdict
from repro.discordsim.platform import DiscordPlatform
from repro.ecosystem.generator import BotProfile
from repro.serving.admission import AdmissionQueue, Bulkhead, BulkheadSaturatedError
from repro.serving.budget import DeadlineBudget
from repro.serving.cache import VerdictCache, bot_fingerprint
from repro.serving.metrics import ServingMetrics
from repro.serving.workers import WorkerPool, WorkerPoolPolicy
from repro.sites.botwebsites import variant_for
from repro.web.client import HttpClient
from repro.web.http import Request, Response, Url
from repro.web.network import NetworkError, VirtualInternet
from repro.web.server import VirtualHost

#: Policy-page path per website structural variant (mirrors the builder).
_POLICY_PATHS = {"nav": "/privacy", "footer": "/privacy-policy", "legal": "/legal/privacy"}

#: Schema version of the persisted service-state snapshot (``--state``).
SERVING_STATE_VERSION = 1


def retry_after_header(seconds: float) -> str:
    """``Retry-After`` is whole seconds and must never be 0.

    Rounding to nearest turns any sub-0.5s hint into ``Retry-After: 0`` —
    an invitation to busy-spin that defeats ``AdmissionQueue.min_retry_after``.
    Ceiling, floored at 1, keeps the header an honest "at least this long".
    """
    return str(max(math.ceil(seconds), 1))


@dataclass(frozen=True)
class ServicePolicy:
    """Serving-side knobs: budgets, bounds and stage cost model.

    Stage ``*_cost`` values are the virtual seconds a stage charges the
    request's deadline budget (the honeypot charges its *measured* sandbox
    consumption; the estimate below only gates admission to the stage).
    """

    #: Virtual-second deadline budget per /vet request.
    deadline: float = 7_200.0
    #: Budget for a whole /audit (shared across the roster's bots).
    audit_deadline: float = 21_600.0
    queue_capacity: int = 32
    #: /readyz flips unready at this fraction of queue capacity.
    ready_high_water: float = 0.8
    #: Per-stage bulkhead limits.
    traceability_limit: int = 8
    code_limit: int = 4
    honeypot_limit: int = 2
    #: Serving-mode sandbox observation window (shorter than the batch
    #: pipeline's full day — a gate must answer before the listing ships).
    honeypot_observation: float = 3_600.0
    honeypot_overhead: float = 300.0
    cache_ttl: float = 7 * 86_400.0
    cache_entries: int = 10_000
    ledger_entries: int = 5_000
    #: Seconds after (re)start during which /readyz reports warming.
    warmup: float = 30.0
    outbound_timeout: float = 30.0
    outbound_attempts: int = 3
    #: Outbound retry budget per retry epoch (bounds aggregate retries).
    retry_budget: int = 256
    retry_epoch: float = 3_600.0
    stale_while_revalidate: bool = True
    #: Virtual cost model for the cheap stages.
    cache_lookup_cost: float = 0.05
    static_cost: float = 5.0
    code_cost: float = 30.0
    traceability_estimate: float = 60.0
    guardian_cost_per_bot: float = 15.0


class VettingService(VirtualHost):
    """A vet-this-bot / audit-this-guild gate with graceful degradation."""

    def __init__(
        self,
        internet: VirtualInternet,
        bots: list[BotProfile] | dict[str, BotProfile],
        policy: ServicePolicy | None = None,
        vetting_policy: VettingPolicy | None = None,
        seed: int = 1,
        hostname: str = "vetting.gate",
        platform: DiscordPlatform | None = None,
        register: bool = True,
        workers: int = 0,
        pool_policy: WorkerPoolPolicy | None = None,
        state_path: str | Path | None = None,
    ) -> None:
        super().__init__(name=hostname)
        self.internet = internet
        self.clock = internet.clock
        self.policy = policy or ServicePolicy()
        self.hostname = hostname
        self.directory: dict[str, BotProfile] = (
            dict(bots) if isinstance(bots, dict) else {bot.name: bot for bot in bots}
        )
        self.pipeline = VettingPipeline(
            vetting_policy or VettingPolicy(dynamic_observation=self.policy.honeypot_observation),
            seed=seed,
        )
        self.queue = AdmissionQueue(capacity=self.policy.queue_capacity)
        self.bulkheads: dict[str, Bulkhead] = {
            "traceability": Bulkhead("traceability", self.policy.traceability_limit),
            "code": Bulkhead("code", self.policy.code_limit),
            "honeypot": Bulkhead("honeypot", self.policy.honeypot_limit),
        }
        self.cache = VerdictCache(ttl=self.policy.cache_ttl, max_entries=self.policy.cache_entries)
        self.metrics = ServingMetrics()
        self.ledger = FaultLedger(max_records=self.policy.ledger_entries)
        self.breakers = CircuitBreakerRegistry(self.clock)
        self.retry_policy = RetryPolicy(max_attempts=self.policy.outbound_attempts, base_delay=1.0)
        self._retry_epoch_index = -1
        self._retry_budget = RetryBudget(self.policy.retry_budget)
        self.outbound = HttpClient(
            internet, client_id=f"{hostname}/outbound", default_timeout=self.policy.outbound_timeout
        )
        self.started_at = self.clock.now()
        self.ready_at = self.started_at + self.policy.warmup
        self.seed = seed
        #: Listing-update epoch per bot: part of the dispatch-ledger job key,
        #: so a vet of the pre-update listing and a vet of the post-update
        #: listing are distinct jobs even when the fingerprint collides.
        self._epochs: dict[str, int] = {}
        self.pool: WorkerPool | None = None
        if workers:
            self.pool = WorkerPool(
                workers,
                seed,
                self.pipeline.policy,
                self.clock,
                fault_ledger=self.ledger,
                policy=pool_policy,
            )
        self._rosters: dict[str, list[str]] = {}
        self.guardian = GuildGuardian(platform) if platform is not None else None
        #: With a path, the verdict cache and counters survive restarts: the
        #: snapshot is scrub-loaded here (damage → quarantine + cold start,
        #: recorded in the fault ledger) and persisted again on shutdown.
        self.state_path = Path(state_path) if state_path is not None else None
        if self.state_path is not None:
            self._restore_persisted_state()
        self._register_routes()
        if register:
            internet.register(hostname, self)

    # -- wiring ---------------------------------------------------------------

    def _register_routes(self) -> None:
        for method in ("GET", "POST"):
            self.add_route("/vet/{bot_name}", self._route_vet, method=method)
            self.add_route("/audit/{guild}", self._route_audit, method=method)
        self.add_route("/bots/{bot_name}/update", self._route_update, method="POST")
        self.add_route("/healthz", self._route_healthz)
        self.add_route("/readyz", self._route_readyz)

    def register_guild(self, guild: str, roster: list[str]) -> None:
        """Declare a guild's installed-bot roster for /audit requests."""
        self._rosters[guild] = list(roster)

    def register_api_client(self, client) -> None:
        """Forward bot API clients to the guardian (usage-based audits)."""
        if self.guardian is None:
            raise ValueError("service was built without a platform; no guardian available")
        self.guardian.register_api_client(client)

    def update_bot(self, bot: BotProfile) -> None:
        """The listing changed: replace the profile and invalidate its verdict."""
        self.directory[bot.name] = bot
        self.cache.invalidate(bot.name)
        self._epochs[bot.name] = self._epochs.get(bot.name, 0) + 1

    def shutdown(self) -> None:
        """Stop the worker pool and persist durable state if configured."""
        if self.pool is not None:
            self.pool.shutdown()
        if self.state_path is not None:
            self.persist_state()

    # -- degraded-mode signal -------------------------------------------------

    @property
    def degraded_mode(self) -> bool:
        """Brownout: saturated admission queue or open outbound breakers."""
        now = self.clock.now()
        return (
            bool(self.breakers.open_hosts())
            or self.queue.depth(now) >= self.policy.queue_capacity
        )

    # -- dispatch (exception firewall) ---------------------------------------

    def handle(self, request: Request, internet: "VirtualInternet | None" = None) -> Response:
        try:
            return super().handle(request, internet)
        except Exception as error:  # the service never lets a request 500 silently
            self.ledger.record(
                "serving", self.hostname, error, self.clock.now(),
                detail=f"unhandled while serving {request.method} {request.path}",
            )
            self.metrics.errors_5xx += 1
            response = self._json({"error": "internal failure; recorded in fault ledger"}, status=503)
            response.headers["Retry-After"] = "5"
            return response

    # -- /vet -----------------------------------------------------------------

    def _route_vet(self, request: Request, bot_name: str) -> Response:
        self.metrics.requests_total += 1
        now = self.clock.now()
        bot = self.directory.get(bot_name)
        if bot is None:
            self.metrics.not_found += 1
            return self._json({"error": f"unknown bot {bot_name!r}"}, status=404)

        shed = self.queue.admit(now)
        if shed is not None:
            return self._degrade_or_shed(bot, now, shed.retry_after, shed.reason)

        budget = DeadlineBudget(start=now, deadline=self.policy.deadline)
        budget.charge("lookup", self.policy.cache_lookup_cost)
        cached = self.cache.lookup(bot, now)
        if cached is not None:
            freshness, entry = cached
            if freshness == "fresh":
                payload = dict(entry.payload)
                payload.update(cache="hit", stale=False, virtual_latency=round(budget.latency, 6))
                return self._serve(payload, budget)
            if self.degraded_mode and self.policy.stale_while_revalidate:
                # Brownout: answer from the superseded verdict now; the
                # revalidation happens on the next healthy request.
                self.cache.count_stale_hit()
                self.metrics.stale_served += 1
                self.metrics.degraded += 1
                payload = dict(entry.payload)
                payload.update(
                    cache="stale", stale=True, degraded=True,
                    virtual_latency=round(budget.latency, 6),
                )
                return self._serve(payload, budget)
            self.metrics.revalidations += 1

        payload = self._vet_bot(bot, budget)
        payload["cache"] = "revalidated" if cached is not None else "miss"
        payload["virtual_latency"] = round(budget.latency, 6)
        if not payload["degraded"]:
            # Partial (honeypot-skipped) verdicts are not cached: a later,
            # healthier request should produce the full verdict.
            self.cache.store(bot, self._cacheable(payload), now)
        else:
            self.metrics.degraded += 1
        return self._serve(payload, budget)

    def _degrade_or_shed(self, bot: BotProfile, now: float, retry_after: float, reason: str) -> Response:
        """Steps 3-4 of the ladder: cached answer if we have anything, else 429."""
        cached = self.cache.lookup(bot, now)
        if cached is not None and self.policy.stale_while_revalidate:
            freshness, entry = cached
            payload = dict(entry.payload)
            if freshness == "fresh":
                payload.update(cache="hit", stale=False, virtual_latency=self.policy.cache_lookup_cost)
            else:
                self.cache.count_stale_hit()
                self.metrics.stale_served += 1
                self.metrics.degraded += 1
                payload.update(
                    cache="stale", stale=True, degraded=True,
                    virtual_latency=self.policy.cache_lookup_cost,
                )
            self.metrics.served += 1
            self.metrics.observe_latency("/vet", self.policy.cache_lookup_cost)
            return self._json(payload)
        self.metrics.shed += 1
        self.ledger.record(
            "serving", self.hostname, "LoadShed", now, detail=f"{reason}; retry_after={retry_after:.1f}"
        )
        response = self._json({"error": reason, "retry_after": round(retry_after, 3)}, status=429)
        response.headers["Retry-After"] = retry_after_header(retry_after)
        return response

    def _serve(self, payload: dict[str, Any], budget: DeadlineBudget) -> Response:
        self.queue.settle(budget.cursor)
        self.metrics.served += 1
        self.metrics.observe_latency("/vet", budget.latency)
        return self._json(payload)

    @staticmethod
    def _cacheable(payload: dict[str, Any]) -> dict[str, Any]:
        kept = dict(payload)
        for transient in ("cache", "virtual_latency"):
            kept.pop(transient, None)
        return kept

    # -- the staged vet under a deadline budget -------------------------------

    def _vet_bot(self, bot: BotProfile, budget: DeadlineBudget) -> dict[str, Any]:
        verdict = VettingVerdict(bot_name=bot.name, approved=True)
        stages: dict[str, str] = {}
        evidence: dict[str, str] = {}

        if not bot.has_valid_permissions:
            verdict.approved = False
            verdict.reasons.append("broken submission: invite link does not resolve")
            stages["static"] = "completed"
        else:
            budget.charge("static", self.policy.static_cost)
            self.pipeline.review_static(bot, verdict)
            stages["static"] = "completed"
            stages["traceability"] = self._stage_traceability(bot, budget, evidence)
            stages["code"] = self._stage_code(bot, verdict, budget)
            stages["honeypot"] = self._stage_honeypot(bot, verdict, budget)

        return {
            "bot": bot.name,
            "approved": verdict.approved,
            "reasons": list(verdict.reasons),
            "degraded": verdict.degraded,
            "stale": False,
            "stages": stages,
            "evidence": evidence,
            "vetted_at": round(budget.start, 6),
        }

    def _stage_traceability(
        self, bot: BotProfile, budget: DeadlineBudget, evidence: dict[str, str]
    ) -> str:
        """Live disclosure crawl: verify the declared website/policy resolve.

        This is the service's own outbound scraping — it goes over the
        shared virtual internet under whatever chaos is installed, guarded
        by per-host circuit breakers and the service retry budget.
        """
        if bot.website_url is None:
            evidence["website"] = "none"
            return "not_applicable"
        estimate = self.policy.traceability_estimate
        if not budget.affords(estimate):
            evidence["website"] = "not_checked"
            return "skipped"
        try:
            lease = self.bulkheads["traceability"].acquire(
                budget.cursor, estimate, max_wait=budget.remaining - estimate
            )
        except BulkheadSaturatedError as error:
            self.ledger.record("serving.traceability", self.hostname, "BulkheadSaturated",
                               self.clock.now(), detail=str(error))
            evidence["website"] = "not_checked"
            return "skipped"
        wait = lease.start - budget.cursor
        wall_before = self.clock.now()
        outcome = self._fetch_policy_evidence(bot)
        consumed = max(self.clock.now() - wall_before, 1.0)
        budget.charge("traceability", wait + consumed)
        self.bulkheads["traceability"].release(lease, lease.start + consumed)
        evidence["website"] = outcome
        return "completed" if outcome in ("ok", "dead", "no_policy") else "degraded"

    def _fetch_policy_evidence(self, bot: BotProfile) -> str:
        url = bot.website_url
        assert url is not None
        host = Url.parse(url).host
        attempt = 0
        while True:
            try:
                self.breakers.check(host)
            except CircuitOpenError as error:
                self.ledger.record("serving.traceability", host, error, self.clock.now(),
                                   detail=f"circuit open; skipping live check for {bot.name}")
                return "circuit_open"
            try:
                home = self.outbound.get(url)
            except NetworkError as error:
                self.breakers.record_failure(host)
                if self.retry_policy.should_retry(attempt + 1) and self._spend_retry():
                    self.clock.sleep(self.retry_policy.delay(attempt))
                    attempt += 1
                    continue
                self.ledger.record("serving.traceability", host, error, self.clock.now(),
                                   detail=f"live check failed for {bot.name}")
                return "unreachable"
            if home.status != 200:
                # Rate-limit walls, captcha surges, injected 5xx: the live
                # check is inconclusive, not evidence of a dead site.
                if home.status >= 500:
                    self.breakers.record_failure(host)
                return "inconclusive"
            self.breakers.record_success(host)
            break
        if not bot.policy.present:
            return "no_policy"
        policy_path = _POLICY_PATHS[variant_for(bot)]
        try:
            page = self.outbound.get(Url.parse(url).join(policy_path))
        except NetworkError as error:
            self.breakers.record_failure(host)
            self.ledger.record("serving.traceability", host, error, self.clock.now(),
                               detail=f"policy fetch failed for {bot.name}")
            return "unreachable"
        if page.status == 200:
            return "ok"
        if page.status == 404:
            return "dead"
        return "inconclusive"

    def _spend_retry(self) -> bool:
        epoch = int(self.clock.now() // self.policy.retry_epoch)
        if epoch != self._retry_epoch_index:
            self._retry_epoch_index = epoch
            self._retry_budget = RetryBudget(self.policy.retry_budget)
        return self._retry_budget.spend()

    def _stage_code(self, bot: BotProfile, verdict: VettingVerdict, budget: DeadlineBudget) -> str:
        if bot.github is None or not bot.github.has_source_code:
            return "not_applicable"
        if not budget.affords(self.policy.code_cost):
            verdict.skipped_stages.append("code")
            return "skipped"
        try:
            lease = self.bulkheads["code"].acquire(
                budget.cursor, self.policy.code_cost, max_wait=budget.remaining - self.policy.code_cost
            )
        except BulkheadSaturatedError as error:
            self.ledger.record("serving.code", self.hostname, "BulkheadSaturated",
                               self.clock.now(), detail=str(error))
            verdict.skipped_stages.append("code")
            return "skipped"
        budget.charge("code", (lease.start - budget.cursor) + self.policy.code_cost)
        self._run_code(bot, verdict)
        return "completed"

    def _stage_honeypot(self, bot: BotProfile, verdict: VettingVerdict, budget: DeadlineBudget) -> str:
        if not self.pipeline.policy.run_dynamic_review or not verdict.approved:
            return "not_run"
        estimate = self.policy.honeypot_observation + self.policy.honeypot_overhead
        if not budget.affords(estimate):
            verdict.skipped_stages.append("honeypot")
            self.metrics.honeypot_skips += 1
            self.ledger.record("serving.honeypot", self.hostname, "DeadlineExceeded",
                               self.clock.now(),
                               detail=f"{bot.name}: {budget.remaining:.0f}s left, needs {estimate:.0f}s")
            return "skipped"
        try:
            lease = self.bulkheads["honeypot"].acquire(
                budget.cursor, estimate, max_wait=budget.remaining - estimate
            )
        except BulkheadSaturatedError as error:
            verdict.skipped_stages.append("honeypot")
            self.metrics.honeypot_skips += 1
            self.ledger.record("serving.honeypot", self.hostname, "BulkheadSaturated",
                               self.clock.now(), detail=f"{bot.name}: {error}")
            return "skipped"
        consumed = self._run_honeypot(bot, verdict)
        budget.charge("honeypot", (lease.start - budget.cursor) + consumed)
        self.bulkheads["honeypot"].release(lease, lease.start + consumed)
        return "completed"

    # -- worker-pool delegation ------------------------------------------------
    #
    # Both heavy stages are pure deterministic functions of (bot, vetting
    # policy, seed) that only ever *append* to the verdict, so the parent can
    # merge a worker's fresh-verdict result and get bytes identical to running
    # the stage in-process.  All virtual-time accounting (budget charges,
    # bulkhead leases) stays in the parent — worker supervision is wall-clock
    # plumbing that never touches the simulated timeline, which is why
    # workers=0 and workers=N (even under kill-storms) serve identical
    # responses.  A pool that cannot answer (crash cascade, breaker-dark
    # slots, re-dispatch budget spent) returns None and the stage runs
    # in-process: the "in-process fallback" rung of the extended ladder.

    def _job_key(self, bot: BotProfile, kind: str) -> str:
        return f"{bot.name}:{bot_fingerprint(bot)}:{self._epochs.get(bot.name, 0)}:{kind}"

    def _run_code(self, bot: BotProfile, verdict: VettingVerdict) -> None:
        if self.pool is not None:
            result = self.pool.execute("code", bot, key=self._job_key(bot, "code"))
            if result is not None:
                if not result["approved"]:
                    verdict.approved = False
                verdict.reasons.extend(result["reasons"])
                return
        self.pipeline.review_code(bot, verdict)

    def _run_honeypot(self, bot: BotProfile, verdict: VettingVerdict) -> float:
        if self.pool is not None:
            result = self.pool.execute(
                "honeypot",
                bot,
                key=self._job_key(bot, "honeypot"),
                observation=self.policy.honeypot_observation,
            )
            if result is not None:
                if not result["approved"]:
                    verdict.approved = False
                verdict.reasons.extend(result["reasons"])
                return result["consumed"]
        return self.pipeline.review_dynamic(bot, verdict, observation=self.policy.honeypot_observation)

    # -- /audit ---------------------------------------------------------------

    def _route_audit(self, request: Request, guild: str) -> Response:
        self.metrics.requests_total += 1
        now = self.clock.now()
        roster = self._rosters.get(guild)
        platform_guild = self._platform_guild(guild) if roster is None else None
        if roster is None and platform_guild is None:
            self.metrics.not_found += 1
            return self._json({"error": f"unknown guild {guild!r}"}, status=404)

        shed = self.queue.admit(now)
        if shed is not None:
            self.metrics.shed += 1
            self.ledger.record("serving", self.hostname, "LoadShed", now,
                               detail=f"audit {guild}: {shed.reason}")
            response = self._json({"error": shed.reason, "retry_after": round(shed.retry_after, 3)}, status=429)
            response.headers["Retry-After"] = retry_after_header(shed.retry_after)
            return response

        budget = DeadlineBudget(start=now, deadline=self.policy.audit_deadline)
        if platform_guild is not None:
            payload = self._audit_platform_guild(platform_guild, budget)
        else:
            payload = self._audit_roster(guild, roster or [], budget)
        payload["virtual_latency"] = round(budget.latency, 6)
        self.queue.settle(budget.cursor)
        self.metrics.served += 1
        if payload.get("degraded"):
            self.metrics.degraded += 1
        self.metrics.observe_latency("/audit", budget.latency)
        return self._json(payload)

    def _platform_guild(self, guild: str):
        if self.guardian is None:
            return None
        try:
            guild_id = int(guild)
        except ValueError:
            return None
        return self.guardian.platform.guilds.get(guild_id)

    def _audit_roster(self, guild: str, roster: list[str], budget: DeadlineBudget) -> dict[str, Any]:
        verdicts: list[dict[str, Any]] = []
        degraded = False
        for bot_name in roster:
            bot = self.directory.get(bot_name)
            if bot is None:
                verdicts.append({"bot": bot_name, "error": "unknown bot"})
                continue
            cached = self.cache.lookup(bot, self.clock.now())
            if cached is not None and cached[0] == "fresh":
                entry = dict(cached[1].payload)
                entry.update(cache="hit", stale=False)
                verdicts.append(entry)
                budget.charge("lookup", self.policy.cache_lookup_cost)
                continue
            entry = self._vet_bot(bot, budget)
            entry["cache"] = "miss"
            if not entry["degraded"]:
                self.cache.store(bot, self._cacheable(entry), self.clock.now())
            degraded = degraded or entry["degraded"]
            verdicts.append(entry)
        approved = sum(1 for entry in verdicts if entry.get("approved"))
        return {
            "guild": guild,
            "bots": verdicts,
            "approved": approved,
            "rejected": len(verdicts) - approved,
            "degraded": degraded,
        }

    def _audit_platform_guild(self, guild, budget: DeadlineBudget) -> dict[str, Any]:
        assert self.guardian is not None
        report = self.guardian.audit_guild(guild.guild_id)
        budget.charge("guardian", self.policy.guardian_cost_per_bot * max(len(report.audits), 1))
        return {
            "guild": str(guild.guild_id),
            "bots": [
                {
                    "bot": audit.bot_name,
                    "risk": round(audit.risk, 4),
                    "high_risk": audit.is_high_risk,
                    "redundant_with_admin": sorted(audit.redundant_with_admin),
                    "granted_but_unused": sorted(audit.granted_but_unused),
                    "data_exposure": sorted(audit.data_exposure),
                }
                for audit in report.audits
            ],
            "high_risk": sum(1 for audit in report.audits if audit.is_high_risk),
            "degraded": False,
        }

    # -- listing updates ------------------------------------------------------

    def _route_update(self, request: Request, bot_name: str) -> Response:
        if bot_name not in self.directory:
            return self._json({"error": f"unknown bot {bot_name!r}"}, status=404)
        invalidated = self.cache.invalidate(bot_name)
        self._epochs[bot_name] = self._epochs.get(bot_name, 0) + 1
        return self._json({"bot": bot_name, "invalidated": invalidated})

    # -- health ---------------------------------------------------------------

    def _route_healthz(self, request: Request) -> Response:
        now = self.clock.now()
        return self._json(
            {
                "status": "ok",
                "uptime": round(now - self.started_at, 3),
                "queue_depth": self.queue.depth(now),
                "queue_capacity": self.policy.queue_capacity,
                "shed_rate": round(self.metrics.shed_rate, 6),
                "breakers_open": self.breakers.open_hosts(),
                "degraded_mode": self.degraded_mode,
                "cache_entries": len(self.cache),
                "pool": self.pool.to_dict() if self.pool is not None else None,
                "ledger": {"faults": len(self.ledger), "dropped": self.ledger.dropped},
                "bulkheads": {
                    name: {"limit": bulkhead.limit, "in_flight": bulkhead.in_flight(now),
                           "saturations": bulkhead.saturations}
                    for name, bulkhead in self.bulkheads.items()
                },
            }
        )

    def _route_readyz(self, request: Request) -> Response:
        now = self.clock.now()
        high_water = int(self.policy.queue_capacity * self.policy.ready_high_water)
        depth = self.queue.depth(now)
        payload = {
            "warming": now < self.ready_at,
            "queue_depth": depth,
            "high_water": high_water,
            "degraded_mode": self.degraded_mode,
        }
        if now < self.ready_at:
            payload["ready"] = False
            response = self._json(payload, status=503)
            response.headers["Retry-After"] = retry_after_header(self.ready_at - now)
            return response
        if depth >= high_water:
            payload["ready"] = False
            earliest = min(self.queue.in_flight) if self.queue.in_flight else now
            response = self._json(payload, status=503)
            response.headers["Retry-After"] = retry_after_header(earliest - now)
            return response
        payload["ready"] = True
        return self._json(payload)

    # -- restart support ------------------------------------------------------

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["cache"] = self.cache.state_dict()
        state["counters"] = self.metrics.counters_dict()
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        if "cache" in state:
            self.cache.restore_state(state["cache"])
        if "counters" in state:
            self.metrics.restore_counters(state["counters"])

    # -- durable state (--state) ----------------------------------------------

    def persist_state(self) -> Path:
        """Snapshot the verdict cache and counters to ``state_path``.

        Checksummed and written via the unified atomic-write protocol, so a
        crash mid-persist leaves either the previous snapshot or none — a
        reload never sees a torn one.
        """
        if self.state_path is None:
            raise ValueError("service was built without a state_path")
        payload = {
            "version": SERVING_STATE_VERSION,
            "checksum": "",
            "state": self.state_dict(),
        }
        payload["checksum"] = payload_checksum(payload)
        return atomic_write_json(self.state_path, payload, label="serving.state")

    def _restore_persisted_state(self) -> None:
        """Scrub-load the persisted snapshot; damage means a cold start.

        A corrupted or unversioned snapshot is quarantined to ``.corrupt``
        and recorded in the fault ledger — the service starts cold and
        re-earns its cache rather than trusting bytes that failed their
        checksum.
        """
        scrubber = RecoveryManager(self.ledger)
        payload = scrubber.scrub_json_artifact(self.state_path, artifact="serving.state")
        if payload is None:
            return
        if payload.get("version") != SERVING_STATE_VERSION or "state" not in payload:
            scrubber.note(
                "serving.state", self.state_path,
                f"unsupported snapshot version {payload.get('version')!r}",
                "ignored; rebuilding cold",
            )
            return
        try:
            self.restore_state(payload["state"])
        except (KeyError, TypeError, ValueError) as error:
            self.cache = VerdictCache(ttl=self.policy.cache_ttl, max_entries=self.policy.cache_entries)
            scrubber.note(
                "serving.state", self.state_path,
                f"snapshot fields are damaged: {error}",
                "reset cache; rebuilding cold",
            )

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _json(payload: dict[str, Any], status: int = 200) -> Response:
        return Response.json(json.dumps(payload, sort_keys=True), status=status)
