"""Reproduction of *Exploring the Security and Privacy Risks of Chatbots in
Messaging Services* (Edu et al., IMC 2022).

The package is organised in layers:

- :mod:`repro.web` — a virtual internet, HTTP client, DOM/selector engine and
  a Selenium-like browser used by the measurement scraper.
- :mod:`repro.discordsim` — a Discord-like messaging platform: guilds, roles,
  permission bitfields, OAuth installs, gateway events and a bot runtime.
- :mod:`repro.botstore` — a top.gg-like chatbot repository site with
  anti-scraping defences.
- :mod:`repro.ecosystem` — a calibrated synthetic chatbot population
  (developers, privacy policies, GitHub repositories, message corpus).
- :mod:`repro.scraper` — the paper's data-collection component.
- :mod:`repro.traceability` — keyword-based privacy-policy traceability.
- :mod:`repro.honeypot` — canary-token dynamic analysis.
- :mod:`repro.codeanalysis` — permission-check detection in bot source code.
- :mod:`repro.analysis` — measurement aggregation (the paper's tables/figures).
- :mod:`repro.core` — the end-to-end assessment pipeline (Figure 1).
"""

__version__ = "1.0.0"

from repro.core.config import PipelineConfig
from repro.core.pipeline import AssessmentPipeline, PipelineWorld
from repro.core.results import PipelineResult
from repro.core.report import render_full_report

__all__ = [
    "AssessmentPipeline",
    "PipelineConfig",
    "PipelineResult",
    "PipelineWorld",
    "render_full_report",
    "__version__",
]
