"""The virtual internet: clock, host registry, latency and failure injection.

The measurement pipeline never touches the real network.  Every site it
visits — the bot repository, bot websites, the GitHub stand-in, the canary
console — is a :class:`~repro.web.server.VirtualHost` registered here.

Time is simulated by :class:`VirtualClock` so that timeout, rate-limit and
latency behaviour is deterministic and tests run instantly.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.web.http import Request, Response

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.web.chaos import FaultSchedule
    from repro.web.server import VirtualHost


def rng_state(rng: random.Random) -> list:
    """JSON-serializable form of a ``random.Random`` state."""
    version, internals, gauss = rng.getstate()
    return [version, list(internals), gauss]


def restore_rng(rng: random.Random, state: list) -> None:
    """Restore a state produced by :func:`rng_state`."""
    rng.setstate((state[0], tuple(state[1]), state[2]))


class NetworkError(Exception):
    """Base class for transport-level failures."""


class UnknownHostError(NetworkError):
    """DNS failure: no host registered under the requested name."""


class ConnectionFailedError(NetworkError):
    """The host is registered but refused or dropped the connection."""


class VirtualClock:
    """A monotonically advancing simulated clock (seconds)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._watchdogs: list[Callable[[float], None]] = []

    def now(self) -> float:
        return self._now

    def add_watchdog(self, callback: Callable[[float], None]) -> Callable[[], None]:
        """Call ``callback(now)`` after every advance; returns a remover.

        Watchdogs may raise — that is their purpose: a supervisor installs
        one to abort a unit of work that consumes more simulated time than
        its deadline, even from inside an otherwise-infinite sleep loop.
        The advance itself is already applied when watchdogs fire, so time
        stays monotonic across an abort.
        """
        self._watchdogs.append(callback)

        def remove() -> None:
            try:
                self._watchdogs.remove(callback)
            except ValueError:
                pass

        return remove

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("the clock cannot run backwards")
        self._now += seconds
        for watchdog in tuple(self._watchdogs):
            watchdog(self._now)

    def sleep(self, seconds: float) -> None:
        """Alias of :meth:`advance`; lets callers read naturally."""
        self.advance(seconds)

    def restore(self, now: float) -> None:
        """Set the clock to an exact instant (resume support).

        Unlike :meth:`advance`, this assigns ``now`` directly so a journal
        replay reproduces the crashed run's timestamps bit-for-bit instead
        of accumulating float deltas.  Time still cannot run backwards, and
        watchdogs do not fire — replay is a fast-forward, not simulated time.
        """
        target = float(now)
        if target < self._now:
            raise ValueError("the clock cannot run backwards")
        self._now = target


@dataclass
class HostConditions:
    """Per-host transport conditions, applied before the host sees a request.

    ``base_latency`` is added to every exchange; ``latency_jitter`` adds a
    uniform random component; ``failure_rate`` drops connections outright,
    and ``extra_latency`` lets tests model persistently slow hosts (the
    paper's "timed out due to slow redirect links").
    """

    base_latency: float = 0.05
    latency_jitter: float = 0.0
    failure_rate: float = 0.0
    extra_latency: float = 0.0

    def sample_latency(self, rng: random.Random) -> float:
        jitter = rng.uniform(0.0, self.latency_jitter) if self.latency_jitter else 0.0
        return self.base_latency + self.extra_latency + jitter


@dataclass
class ExchangeRecord:
    """One exchange *attempt*, kept for politeness auditing.

    Transport failures are recorded too — the client sent the request and
    the wire carried it, so an honest rate audit must count it.  A failed
    attempt has ``status == 0`` and ``error`` naming the failure class.
    """

    time: float
    client_id: str
    method: str
    url: str
    status: int
    latency: float
    error: str = ""

    @property
    def ok(self) -> bool:
        """Whether the exchange completed with an HTTP response."""
        return self.status > 0


@dataclass
class _HostEntry:
    host: "VirtualHost"
    conditions: HostConditions = field(default_factory=HostConditions)


class VirtualInternet:
    """Routes requests to registered hosts under simulated conditions.

    The ethics note in the paper (crawl "at a rate that does not create any
    disruption") is auditable here: :attr:`log` records every exchange with
    its simulated timestamp.
    """

    #: Default bound on the exchange log (chaos benches generate millions of
    #: exchanges; auditing only ever needs a recent window).
    DEFAULT_LOG_LIMIT = 100_000
    #: Per-client timestamp history kept for :meth:`request_rate`.
    DEFAULT_RATE_HISTORY = 10_000
    #: Bound on hosts built on demand by resolvers: past this, the coldest
    #: resolver-built host is dropped and re-resolved on its next visit.
    DEFAULT_DYNAMIC_HOST_LIMIT = 1_024

    def __init__(
        self,
        clock: VirtualClock | None = None,
        seed: int = 0,
        log_limit: int | None = DEFAULT_LOG_LIMIT,
        rate_history: int = DEFAULT_RATE_HISTORY,
    ) -> None:
        self.clock = clock or VirtualClock()
        self._hosts: dict[str, _HostEntry] = {}
        self._resolvers: list[Callable[[str], "VirtualHost | None"]] = []
        self._dynamic_hosts: OrderedDict[str, None] = OrderedDict()
        self.dynamic_host_limit = self.DEFAULT_DYNAMIC_HOST_LIMIT
        self._rng = random.Random(seed)
        self.log: deque[ExchangeRecord] = deque(maxlen=log_limit)
        #: Exchange records evicted from the bounded ``log`` ring.  A
        #: long-lived service run keeps RSS bounded by dropping the oldest
        #: audit entries; the counter keeps the bound honest.
        self.log_dropped = 0
        self._observers: list[Callable[[ExchangeRecord], None]] = []
        self._rate_history = max(rate_history, 1)
        self._client_times: dict[str, list[float]] = {}
        self.exchanges_completed = 0
        self.exchanges_failed = 0
        self.chaos: "FaultSchedule | None" = None

    @property
    def exchanges_total(self) -> int:
        """All exchange attempts, completed or dropped at the transport."""
        return self.exchanges_completed + self.exchanges_failed

    # -- registry ----------------------------------------------------------

    def register(self, hostname: str, host: "VirtualHost", conditions: HostConditions | None = None) -> None:
        """Register ``host`` under ``hostname`` (replaces any previous host).

        Explicit registration pins the host: it is exempt from the dynamic
        LRU even if a resolver built an earlier incarnation of it.
        """
        key = hostname.lower()
        self._hosts[key] = _HostEntry(host, conditions or HostConditions())
        self._dynamic_hosts.pop(key, None)

    def register_resolver(self, resolver: Callable[[str], "VirtualHost | None"], limit: int | None = None) -> None:
        """Install an on-demand host factory consulted for unknown hostnames.

        A resolver maps ``hostname -> VirtualHost | None``.  Hosts it builds
        are registered on first contact and kept in a bounded LRU of size
        ``dynamic_host_limit``: a million-bot ecosystem can expose a million
        websites without a million resident :class:`VirtualHost` objects,
        because a cold site is simply rebuilt (deterministically, from the
        same profile) on its next visit.
        """
        self._resolvers.append(resolver)
        if limit is not None:
            self.dynamic_host_limit = max(limit, 1)

    def unregister(self, hostname: str) -> None:
        self._hosts.pop(hostname.lower(), None)
        self._dynamic_hosts.pop(hostname.lower(), None)

    def _entry_for(self, hostname: str) -> "_HostEntry | None":
        """Look up ``hostname``, consulting resolvers for unknown hosts."""
        entry = self._hosts.get(hostname)
        if entry is not None:
            if hostname in self._dynamic_hosts:
                self._dynamic_hosts.move_to_end(hostname)
            return entry
        for resolver in self._resolvers:
            host = resolver(hostname)
            if host is None:
                continue
            entry = _HostEntry(host, HostConditions())
            self._hosts[hostname] = entry
            self._dynamic_hosts[hostname] = None
            while len(self._dynamic_hosts) > self.dynamic_host_limit:
                cold, _ = self._dynamic_hosts.popitem(last=False)
                self._hosts.pop(cold, None)
            return entry
        return None

    def knows(self, hostname: str) -> bool:
        return hostname.lower() in self._hosts

    def host(self, hostname: str) -> "VirtualHost":
        try:
            return self._hosts[hostname.lower()].host
        except KeyError:
            raise UnknownHostError(hostname) from None

    def conditions(self, hostname: str) -> HostConditions:
        try:
            return self._hosts[hostname.lower()].conditions
        except KeyError:
            raise UnknownHostError(hostname) from None

    def hostnames(self) -> list[str]:
        return sorted(self._hosts)

    # -- observation -------------------------------------------------------

    def add_observer(self, callback: Callable[[ExchangeRecord], None]) -> None:
        """Invoke ``callback`` for every completed exchange."""
        self._observers.append(callback)

    # -- chaos -------------------------------------------------------------

    def install_chaos(self, schedule: "FaultSchedule") -> "FaultSchedule":
        """Attach a fault schedule; every exchange consults it from now on."""
        schedule.bind(self.clock)
        self.chaos = schedule
        return schedule

    def remove_chaos(self) -> None:
        self.chaos = None

    # -- exchange ----------------------------------------------------------

    def exchange(self, request: Request) -> tuple[Response, float]:
        """Deliver ``request`` and return ``(response, latency_seconds)``.

        Raises :class:`UnknownHostError` or :class:`ConnectionFailedError`
        on transport failure; the clock still advances in the failure case
        (a dropped connection costs the caller time — this is what makes
        client-side retry budgets meaningful).
        """
        hostname = request.url.host.lower()
        entry = self._entry_for(hostname)
        if entry is None:
            raise UnknownHostError(hostname or "<empty-host>")
        latency = entry.conditions.sample_latency(self._rng)
        if self.chaos is not None:
            latency += self.chaos.extra_latency(hostname, self.clock.now())
        self.clock.advance(latency)
        if entry.conditions.failure_rate and self._rng.random() < entry.conditions.failure_rate:
            error = ConnectionFailedError(hostname)
            self._record_failure(request, latency, error)
            raise error
        response = None
        if self.chaos is not None:
            # May raise ConnectionFailedError (outage window) — the clock has
            # already advanced, so the failed attempt still costs the caller.
            try:
                response = self.chaos.intercept(request, self.clock.now())
            except NetworkError as error:
                self._record_failure(request, latency, error)
                raise
        if response is None:
            response = entry.host.handle(request, self)
            if self.chaos is not None:
                response = self.chaos.mangle(request, response, self.clock.now())
        record = ExchangeRecord(
            time=self.clock.now(),
            client_id=request.client_id,
            method=request.method,
            url=str(request.url),
            status=response.status,
            latency=latency,
        )
        self._record(record)
        return response, latency

    def _record_failure(self, request: Request, latency: float, error: BaseException) -> None:
        self._record(
            ExchangeRecord(
                time=self.clock.now(),
                client_id=request.client_id,
                method=request.method,
                url=str(request.url),
                status=0,
                latency=latency,
                error=type(error).__name__,
            )
        )

    def _record(self, record: ExchangeRecord) -> None:
        if self.log.maxlen is not None and len(self.log) == self.log.maxlen:
            self.log_dropped += 1
        self.log.append(record)
        if record.ok:
            self.exchanges_completed += 1
        else:
            self.exchanges_failed += 1
        times = self._client_times.setdefault(record.client_id, [])
        times.append(record.time)
        # Amortised O(1) trim: drop the old half once we hold 2x the history.
        if len(times) > 2 * self._rate_history:
            del times[: len(times) - self._rate_history]
        for observer in self._observers:
            observer(record)

    # -- resume support ------------------------------------------------------

    def state_dict(self, include_history: bool = False) -> dict:
        """Serializable transport state (hosts and chaos are captured separately).

        The bounded exchange ``log`` is audit-only and never captured;
        ``include_history`` adds the per-client rate-audit timestamps, which
        stage-boundary snapshots keep but per-unit journal records omit.
        """
        state = {
            "rng": rng_state(self._rng),
            "completed": self.exchanges_completed,
            "failed": self.exchanges_failed,
        }
        if include_history:
            state["client_times"] = {client: list(times) for client, times in self._client_times.items()}
        return state

    def restore_state(self, state: dict) -> None:
        restore_rng(self._rng, state["rng"])
        self.exchanges_completed = state["completed"]
        self.exchanges_failed = state["failed"]
        if "client_times" in state:
            self._client_times = {client: list(times) for client, times in state["client_times"].items()}

    # -- auditing helpers ----------------------------------------------------

    def request_rate(self, client_id: str, window: float) -> float:
        """Requests per second issued by ``client_id`` over the trailing window.

        O(log n) via binary search over the client's (monotonic) timestamp
        history instead of re-scanning the full exchange log per call.
        """
        if window <= 0:
            raise ValueError("window must be positive")
        times = self._client_times.get(client_id, ())
        cutoff = self.clock.now() - window
        count = len(times) - bisect_left(times, cutoff)
        return count / window
