"""The virtual internet: clock, host registry, latency and failure injection.

The measurement pipeline never touches the real network.  Every site it
visits — the bot repository, bot websites, the GitHub stand-in, the canary
console — is a :class:`~repro.web.server.VirtualHost` registered here.

Time is simulated by :class:`VirtualClock` so that timeout, rate-limit and
latency behaviour is deterministic and tests run instantly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.web.http import Request, Response

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.web.server import VirtualHost


class NetworkError(Exception):
    """Base class for transport-level failures."""


class UnknownHostError(NetworkError):
    """DNS failure: no host registered under the requested name."""


class ConnectionFailedError(NetworkError):
    """The host is registered but refused or dropped the connection."""


class VirtualClock:
    """A monotonically advancing simulated clock (seconds)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("the clock cannot run backwards")
        self._now += seconds

    def sleep(self, seconds: float) -> None:
        """Alias of :meth:`advance`; lets callers read naturally."""
        self.advance(seconds)


@dataclass
class HostConditions:
    """Per-host transport conditions, applied before the host sees a request.

    ``base_latency`` is added to every exchange; ``latency_jitter`` adds a
    uniform random component; ``failure_rate`` drops connections outright,
    and ``extra_latency`` lets tests model persistently slow hosts (the
    paper's "timed out due to slow redirect links").
    """

    base_latency: float = 0.05
    latency_jitter: float = 0.0
    failure_rate: float = 0.0
    extra_latency: float = 0.0

    def sample_latency(self, rng: random.Random) -> float:
        jitter = rng.uniform(0.0, self.latency_jitter) if self.latency_jitter else 0.0
        return self.base_latency + self.extra_latency + jitter


@dataclass
class ExchangeRecord:
    """One request/response exchange, kept for politeness auditing."""

    time: float
    client_id: str
    method: str
    url: str
    status: int
    latency: float


@dataclass
class _HostEntry:
    host: "VirtualHost"
    conditions: HostConditions = field(default_factory=HostConditions)


class VirtualInternet:
    """Routes requests to registered hosts under simulated conditions.

    The ethics note in the paper (crawl "at a rate that does not create any
    disruption") is auditable here: :attr:`log` records every exchange with
    its simulated timestamp.
    """

    def __init__(self, clock: VirtualClock | None = None, seed: int = 0) -> None:
        self.clock = clock or VirtualClock()
        self._hosts: dict[str, _HostEntry] = {}
        self._rng = random.Random(seed)
        self.log: list[ExchangeRecord] = []
        self._observers: list[Callable[[ExchangeRecord], None]] = []

    # -- registry ----------------------------------------------------------

    def register(self, hostname: str, host: "VirtualHost", conditions: HostConditions | None = None) -> None:
        """Register ``host`` under ``hostname`` (replaces any previous host)."""
        self._hosts[hostname.lower()] = _HostEntry(host, conditions or HostConditions())

    def unregister(self, hostname: str) -> None:
        self._hosts.pop(hostname.lower(), None)

    def knows(self, hostname: str) -> bool:
        return hostname.lower() in self._hosts

    def host(self, hostname: str) -> "VirtualHost":
        try:
            return self._hosts[hostname.lower()].host
        except KeyError:
            raise UnknownHostError(hostname) from None

    def conditions(self, hostname: str) -> HostConditions:
        try:
            return self._hosts[hostname.lower()].conditions
        except KeyError:
            raise UnknownHostError(hostname) from None

    def hostnames(self) -> list[str]:
        return sorted(self._hosts)

    # -- observation -------------------------------------------------------

    def add_observer(self, callback: Callable[[ExchangeRecord], None]) -> None:
        """Invoke ``callback`` for every completed exchange."""
        self._observers.append(callback)

    # -- exchange ----------------------------------------------------------

    def exchange(self, request: Request) -> tuple[Response, float]:
        """Deliver ``request`` and return ``(response, latency_seconds)``.

        Raises :class:`UnknownHostError` or :class:`ConnectionFailedError`
        on transport failure; the clock still advances in the failure case
        (a dropped connection costs the caller time — this is what makes
        client-side retry budgets meaningful).
        """
        hostname = request.url.host.lower()
        if hostname not in self._hosts:
            raise UnknownHostError(hostname or "<empty-host>")
        entry = self._hosts[hostname]
        latency = entry.conditions.sample_latency(self._rng)
        self.clock.advance(latency)
        if entry.conditions.failure_rate and self._rng.random() < entry.conditions.failure_rate:
            raise ConnectionFailedError(hostname)
        response = entry.host.handle(request, self)
        record = ExchangeRecord(
            time=self.clock.now(),
            client_id=request.client_id,
            method=request.method,
            url=str(request.url),
            status=response.status,
            latency=latency,
        )
        self.log.append(record)
        for observer in self._observers:
            observer(record)
        return response, latency

    # -- auditing helpers ----------------------------------------------------

    def request_rate(self, client_id: str, window: float) -> float:
        """Requests per second issued by ``client_id`` over the trailing window."""
        if window <= 0:
            raise ValueError("window must be positive")
        cutoff = self.clock.now() - window
        count = sum(1 for record in self.log if record.client_id == client_id and record.time >= cutoff)
        return count / window
