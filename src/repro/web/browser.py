"""A Selenium-like driver over the virtual internet.

The paper's scraper is written against Selenium WebDriver: element locators,
explicit waits, and reacting to ``NoSuchElementException`` /
``TimeoutException`` when "elements unexpectedly become unavailable" or "a
command takes more than the wait time".  This module reproduces exactly that
API surface so the measurement code reads like the original.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.web.client import HttpClient, RequestTimeoutError
from repro.web.dom import Element, parse_html
from repro.web.http import Response, Url
from repro.web.network import NetworkError, VirtualInternet

T = TypeVar("T")


class WebDriverException(Exception):
    """Base class for driver-level failures."""


class NoSuchElementException(WebDriverException):
    """No element matched the locator on the current page."""


class TimeoutException(WebDriverException):
    """An explicit wait expired before its condition held."""


class StaleElementReferenceException(WebDriverException):
    """The element belongs to a page the browser has navigated away from."""


class By:
    """Locator strategies (the subset the paper's scraper uses)."""

    CSS_SELECTOR = "css selector"
    ID = "id"
    CLASS_NAME = "class name"
    TAG_NAME = "tag name"
    LINK_TEXT = "link text"
    PARTIAL_LINK_TEXT = "partial link text"


def _locator_to_css(by: str, value: str) -> str | None:
    if by == By.CSS_SELECTOR:
        return value
    if by == By.ID:
        return f"#{value}"
    if by == By.CLASS_NAME:
        return f".{value}"
    if by == By.TAG_NAME:
        return value
    return None


class WebElement:
    """A located element, pinned to the page generation it came from."""

    def __init__(self, browser: "Browser", element: Element, generation: int) -> None:
        self._browser = browser
        self._element = element
        self._generation = generation

    def _live(self) -> Element:
        if self._generation != self._browser._generation:
            raise StaleElementReferenceException("page has changed since this element was located")
        return self._element

    @property
    def text(self) -> str:
        return self._live().text

    @property
    def tag_name(self) -> str:
        return self._live().tag

    def get_attribute(self, name: str) -> str | None:
        return self._live().get(name)

    def find_element(self, by: str, value: str) -> "WebElement":
        return self._browser._find(self._live(), by, value, require=True)[0]

    def find_elements(self, by: str, value: str) -> list["WebElement"]:
        return self._browser._find(self._live(), by, value, require=False)

    def click(self) -> None:
        """Follow an anchor's ``href`` (the only click the scraper performs)."""
        element = self._live()
        href = element.get("href")
        if element.tag != "a" or not href:
            raise WebDriverException(f"cannot click non-link element {element!r}")
        self._browser.get(str(self._browser.current_url.join(href)))

    def __repr__(self) -> str:
        return f"WebElement({self._element!r})"


class Browser:
    """Headless browser: fetch, parse, locate.

    ``page_load_timeout`` mirrors Selenium's setting; fetches that exceed it
    surface as :class:`TimeoutException`, which is what the paper's scraper
    catches around slow redirect chains.
    """

    def __init__(
        self,
        internet: VirtualInternet,
        client_id: str = "scraper",
        page_load_timeout: float = 10.0,
    ) -> None:
        self.client = HttpClient(internet, client_id=client_id, default_timeout=page_load_timeout)
        self.internet = internet
        self.page_load_timeout = page_load_timeout
        self._generation = 0
        self._dom: Element | None = None
        self._response: Response | None = None
        self.current_url: Url = Url.parse("about:blank")
        self.pages_loaded = 0

    # -- navigation ----------------------------------------------------------

    def get(self, url: str | Url) -> Response:
        """Navigate to ``url``; network failures surface as driver exceptions."""
        try:
            response = self.client.get(url, timeout=self.page_load_timeout)
        except RequestTimeoutError as error:
            raise TimeoutException(str(error)) from error
        except NetworkError as error:
            raise WebDriverException(f"navigation failed: {error}") from error
        self._install_page(response)
        return response

    def _install_page(self, response: Response) -> None:
        self._generation += 1
        self._response = response
        self._dom = parse_html(response.body) if "html" in response.content_type else parse_html("")
        self.current_url = response.url or self.current_url
        self.pages_loaded += 1

    # -- inspection ------------------------------------------------------------

    @property
    def page_source(self) -> str:
        return self._response.body if self._response else ""

    @property
    def status_code(self) -> int:
        return self._response.status if self._response else 0

    @property
    def title(self) -> str:
        if self._dom is None:
            return ""
        node = self._dom.select_one("title")
        return node.text if node else ""

    # -- location ----------------------------------------------------------------

    def find_element(self, by: str, value: str) -> WebElement:
        if self._dom is None:
            raise NoSuchElementException("no page loaded")
        return self._find(self._dom, by, value, require=True)[0]

    def find_elements(self, by: str, value: str) -> list[WebElement]:
        if self._dom is None:
            return []
        return self._find(self._dom, by, value, require=False)

    def _find(self, root: Element, by: str, value: str, require: bool) -> list[WebElement]:
        css = _locator_to_css(by, value)
        if css is not None:
            nodes = root.select(css)
        elif by == By.LINK_TEXT:
            nodes = [node for node in root.find_all("a") if node.text == value]
        elif by == By.PARTIAL_LINK_TEXT:
            nodes = [node for node in root.find_all("a") if value in node.text]
        else:
            raise WebDriverException(f"unsupported locator strategy: {by}")
        if require and not nodes:
            raise NoSuchElementException(f"no element for {by}={value!r} on {self.current_url}")
        return [WebElement(self, node, self._generation) for node in nodes]


class WebDriverWait:
    """Explicit wait: poll a condition on the virtual clock."""

    def __init__(self, browser: Browser, timeout: float, poll_frequency: float = 0.5) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.browser = browser
        self.timeout = timeout
        self.poll_frequency = max(poll_frequency, 1e-3)

    def until(self, condition: Callable[[Browser], T]) -> T:
        """Return the condition's first truthy result, else raise TimeoutException."""
        clock = self.browser.internet.clock
        deadline = clock.now() + self.timeout
        while True:
            try:
                result = condition(self.browser)
            except NoSuchElementException:
                result = None  # type: ignore[assignment]
            if result:
                return result
            if clock.now() >= deadline:
                raise TimeoutException(f"condition not met within {self.timeout:.1f}s")
            clock.sleep(self.poll_frequency)


def presence_of_element_located(by: str, value: str) -> Callable[[Browser], WebElement | None]:
    """Expected-condition helper mirroring Selenium's."""

    def probe(browser: Browser) -> WebElement | None:
        try:
            return browser.find_element(by, value)
        except NoSuchElementException:
            return None

    return probe
