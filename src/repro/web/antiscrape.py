"""Anti-scraping middleware for virtual hosts.

The methodology section lists the defences the measurement scraper had to
overcome: request-rate limits, captchas, email verification, and page
structures that vary or drop elements unexpectedly.  Each defence is a
middleware that can be attached to any :class:`~repro.web.server.VirtualHost`.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.web.captcha import CaptchaService
from repro.web.http import Request, Response
from repro.web.network import VirtualClock, restore_rng, rng_state

Next = Callable[[Request], Response]

#: Cookie names used by the walls (public so scrapers/tests can reference them).
CAPTCHA_CLEARANCE_COOKIE = "cf_clearance"
EMAIL_VERIFIED_COOKIE = "email_verified"


class RateLimitMiddleware:
    """Sliding-window per-client rate limiting.

    Clients exceeding ``max_requests`` in ``window`` seconds receive a 429
    with ``Retry-After`` — the signal that tells a polite scraper to slow
    down, per the paper's "we limit the rate at which we generate requests".
    """

    def __init__(self, clock: VirtualClock, max_requests: int, window: float) -> None:
        if max_requests < 1 or window <= 0:
            raise ValueError("max_requests must be >= 1 and window positive")
        self.clock = clock
        self.max_requests = max_requests
        self.window = window
        self._history: dict[str, list[float]] = {}
        self.rejections = 0

    def __call__(self, request: Request, next_handler: Next) -> Response:
        if request.path == "/robots.txt":
            return next_handler(request)  # robots must stay reachable
        now = self.clock.now()
        history = self._history.setdefault(request.client_id, [])
        cutoff = now - self.window
        while history and history[0] < cutoff:
            history.pop(0)
        if len(history) >= self.max_requests:
            self.rejections += 1
            retry_after = max(self.window - (now - history[0]), 0.0)
            response = Response.text("rate limit exceeded", status=429)
            response.headers["Retry-After"] = f"{retry_after:.2f}"
            return response
        history.append(now)
        return next_handler(request)

    def state_dict(self) -> dict:
        return {
            "history": {client: list(times) for client, times in self._history.items()},
            "rejections": self.rejections,
        }

    def restore_state(self, state: dict) -> None:
        self._history = {client: list(times) for client, times in state["history"].items()}
        self.rejections = state["rejections"]


class CaptchaWallMiddleware:
    """Interpose a captcha challenge every ``challenge_every`` requests.

    A client without a valid clearance cookie is served a 403 page embedding
    a challenge (``#captcha-challenge`` with ``data-challenge-id``).  The
    client solves it and retries the original URL with ``captcha_id`` and
    ``captcha_answer`` query parameters; on success a clearance cookie good
    for ``clearance_requests`` further requests is set and the request
    proceeds.
    """

    def __init__(
        self,
        service: CaptchaService,
        challenge_every: int = 25,
        clearance_requests: int = 25,
    ) -> None:
        self.service = service
        self.challenge_every = challenge_every
        self.clearance_requests = clearance_requests
        self._request_counts: dict[str, int] = {}
        self._clearances: dict[str, int] = {}
        self.challenges_served = 0

    def __call__(self, request: Request, next_handler: Next) -> Response:
        if request.path == "/robots.txt":
            return next_handler(request)  # robots must stay reachable
        client = request.client_id
        # An in-flight solve attempt?
        challenge_id = request.param("captcha_id")
        answer = request.param("captcha_answer")
        if challenge_id and answer is not None:
            if self.service.verify(challenge_id, answer):
                self._clearances[client] = self.clearance_requests
                response = next_handler(request)
                response.set_cookie(CAPTCHA_CLEARANCE_COOKIE, f"ok-{client}")
                return response
            return self._challenge_response()

        remaining = self._clearances.get(client, 0)
        if remaining > 0:
            self._clearances[client] = remaining - 1
            return next_handler(request)

        count = self._request_counts.get(client, 0) + 1
        self._request_counts[client] = count
        if count % self.challenge_every == 0 or count == 1:
            return self._challenge_response()
        return next_handler(request)

    def state_dict(self) -> dict:
        return {
            "counts": dict(self._request_counts),
            "clearances": dict(self._clearances),
            "served": self.challenges_served,
        }

    def restore_state(self, state: dict) -> None:
        self._request_counts = dict(state["counts"])
        self._clearances = dict(state["clearances"])
        self.challenges_served = state["served"]

    def _challenge_response(self) -> Response:
        challenge = self.service.issue()
        self.challenges_served += 1
        body = (
            "<html><head><title>Security check</title></head><body>"
            "<h1>Please verify you are human</h1>"
            f'<div id="captcha-challenge" data-challenge-id="{challenge.challenge_id}">'
            f"<p class='prompt'>{challenge.prompt}</p></div>"
            "</body></html>"
        )
        return Response.html(body, status=403)


class EmailVerificationMiddleware:
    """One-time email-verification interstitial.

    First visit from a client yields a 403 "verify your email" page with a
    verification link; following the link sets a verified cookie.  This is
    the lighter of the two walls the paper mentions.
    """

    VERIFY_PATH = "/verify-email"

    def __init__(self) -> None:
        self._verified: set[str] = set()
        self.interstitials_served = 0

    def __call__(self, request: Request, next_handler: Next) -> Response:
        client = request.client_id
        if request.path == self.VERIFY_PATH:
            self._verified.add(client)
            response = Response.html("<html><body><p>Email verified. <a href='/'>Continue</a></p></body></html>")
            response.set_cookie(EMAIL_VERIFIED_COOKIE, "1")
            return response
        if client in self._verified or request.cookie(EMAIL_VERIFIED_COOKIE) == "1":
            return next_handler(request)
        self.interstitials_served += 1
        body = (
            "<html><head><title>Verify your email</title></head><body>"
            "<h1>Check your inbox</h1>"
            f'<a id="verify-link" href="{self.VERIFY_PATH}">I have verified my email</a>'
            "</body></html>"
        )
        return Response.html(body, status=403)

    def state_dict(self) -> dict:
        return {"verified": sorted(self._verified), "served": self.interstitials_served}

    def restore_state(self, state: dict) -> None:
        self._verified = set(state["verified"])
        self.interstitials_served = state["served"]


class FlakyMiddleware:
    """Randomly serve transient 5xx errors (elements "become unavailable")."""

    def __init__(self, failure_rate: float, seed: int = 0) -> None:
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError("failure_rate must be in [0, 1)")
        self.failure_rate = failure_rate
        self._rng = random.Random(seed)
        self.failures_injected = 0

    def __call__(self, request: Request, next_handler: Next) -> Response:
        if self._rng.random() < self.failure_rate:
            self.failures_injected += 1
            return Response.text("temporarily unavailable", status=503)
        return next_handler(request)

    def state_dict(self) -> dict:
        return {"rng": rng_state(self._rng), "failures": self.failures_injected}

    def restore_state(self, state: dict) -> None:
        restore_rng(self._rng, state["rng"])
        self.failures_injected = state["failures"]
