"""Virtual internet and scraping substrate.

The paper's data collection is built on Selenium driving a real browser over
the real internet.  Offline, we reproduce the same *shape* of stack:

- :mod:`repro.web.http` — URLs, headers, requests and responses.
- :mod:`repro.web.network` — a :class:`VirtualInternet` that routes requests
  to registered :class:`~repro.web.server.VirtualHost` instances under a
  :class:`VirtualClock`, with latency and failure injection.
- :mod:`repro.web.client` — an HTTP client with timeouts, retries, redirects
  and cookies.
- :mod:`repro.web.dom` — an HTML parser and CSS selector engine.
- :mod:`repro.web.browser` — a Selenium-like driver (element locators,
  explicit waits, the exception types the paper's scraper reacts to).
- :mod:`repro.web.captcha` — captcha challenges plus a "2Captcha"-like
  solving service.
- :mod:`repro.web.antiscrape` — middleware implementing the anti-scraping
  strategies the paper had to defeat.
- :mod:`repro.web.chaos` — deterministic, seeded fault injection (outages,
  5xx bursts, latency spikes, rate-limit storms, captcha surges, truncated
  HTML) consulted by the virtual internet on every exchange.
"""

from repro.web.chaos import PROFILES, ChaosProfile, FaultKind, FaultSchedule, resolve_profile
from repro.web.http import Headers, Request, Response, Url
from repro.web.network import (
    ConnectionFailedError,
    NetworkError,
    UnknownHostError,
    VirtualClock,
    VirtualInternet,
)
from repro.web.server import Route, VirtualHost
from repro.web.client import HttpClient, RequestTimeoutError, TooManyRedirectsError
from repro.web.dom import Element, parse_html, select
from repro.web.browser import (
    Browser,
    By,
    NoSuchElementException,
    StaleElementReferenceException,
    TimeoutException,
    WebDriverException,
    WebDriverWait,
)

__all__ = [
    "Browser",
    "By",
    "ChaosProfile",
    "ConnectionFailedError",
    "Element",
    "FaultKind",
    "FaultSchedule",
    "PROFILES",
    "Headers",
    "HttpClient",
    "NetworkError",
    "NoSuchElementException",
    "Request",
    "RequestTimeoutError",
    "Response",
    "Route",
    "StaleElementReferenceException",
    "TimeoutException",
    "TooManyRedirectsError",
    "UnknownHostError",
    "Url",
    "VirtualClock",
    "VirtualHost",
    "VirtualInternet",
    "WebDriverException",
    "WebDriverWait",
    "parse_html",
    "resolve_profile",
    "select",
]
