"""HTTP primitives for the virtual internet.

These mirror the subset of HTTP semantics the measurement pipeline relies on:
URL parsing/joining, case-insensitive headers, request/response records and
the status codes used by the simulated sites (200, 3xx redirects, 403 captcha
walls, 404, 429 rate limits, 5xx failures).
"""

from __future__ import annotations

import urllib.parse
from dataclasses import dataclass, field
from typing import Iterator, Mapping

#: Reason phrases for the status codes the simulation uses.
REASON_PHRASES: dict[int, str] = {
    200: "OK",
    201: "Created",
    204: "No Content",
    301: "Moved Permanently",
    302: "Found",
    303: "See Other",
    307: "Temporary Redirect",
    308: "Permanent Redirect",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    410: "Gone",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

REDIRECT_STATUSES = frozenset({301, 302, 303, 307, 308})


class Url:
    """A parsed URL.

    Only ``http``/``https`` URLs appear on the virtual internet; the scheme is
    carried through but does not change routing behaviour.
    """

    __slots__ = ("scheme", "host", "port", "path", "query", "fragment")

    def __init__(
        self,
        scheme: str = "https",
        host: str = "",
        port: int | None = None,
        path: str = "/",
        query: str = "",
        fragment: str = "",
    ) -> None:
        self.scheme = scheme
        self.host = host
        self.port = port
        self.path = path or "/"
        self.query = query
        self.fragment = fragment

    @classmethod
    def parse(cls, raw: str) -> "Url":
        """Parse an absolute or scheme-relative URL string."""
        parts = urllib.parse.urlsplit(raw)
        if not parts.netloc and not parts.scheme:
            # A bare path such as "/bots/1" — host resolved at join time.
            return cls(scheme="", host="", path=parts.path, query=parts.query, fragment=parts.fragment)
        return cls(
            scheme=parts.scheme or "https",
            host=parts.hostname or "",
            port=parts.port,
            path=parts.path or "/",
            query=parts.query,
            fragment=parts.fragment,
        )

    def join(self, reference: str) -> "Url":
        """Resolve ``reference`` against this URL (RFC 3986 resolution)."""
        return Url.parse(urllib.parse.urljoin(str(self), reference))

    @property
    def is_absolute(self) -> bool:
        return bool(self.host)

    def query_params(self) -> dict[str, str]:
        """Decode the query string into a flat ``dict`` (last value wins)."""
        return dict(urllib.parse.parse_qsl(self.query, keep_blank_values=True))

    def with_params(self, **params: str) -> "Url":
        """Return a copy with ``params`` merged into the query string."""
        merged = self.query_params()
        merged.update({key: str(value) for key, value in params.items()})
        return Url(
            scheme=self.scheme,
            host=self.host,
            port=self.port,
            path=self.path,
            query=urllib.parse.urlencode(merged),
            fragment=self.fragment,
        )

    def origin(self) -> str:
        """Return ``scheme://host[:port]`` for same-origin comparisons."""
        port = f":{self.port}" if self.port else ""
        return f"{self.scheme}://{self.host}{port}"

    def __str__(self) -> str:
        port = f":{self.port}" if self.port else ""
        query = f"?{self.query}" if self.query else ""
        fragment = f"#{self.fragment}" if self.fragment else ""
        scheme = f"{self.scheme}://" if self.scheme else ""
        return f"{scheme}{self.host}{port}{self.path}{query}{fragment}"

    def __repr__(self) -> str:
        return f"Url({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Url):
            return str(self) == str(other)
        if isinstance(other, str):
            return str(self) == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(str(self))


class Headers:
    """Case-insensitive header map (single-valued, like the scraper needs)."""

    def __init__(self, initial: Mapping[str, str] | None = None) -> None:
        self._items: dict[str, tuple[str, str]] = {}
        if initial:
            for key, value in initial.items():
                self[key] = value

    def __getitem__(self, key: str) -> str:
        return self._items[key.lower()][1]

    def __setitem__(self, key: str, value: str) -> None:
        self._items[key.lower()] = (key, str(value))

    def __delitem__(self, key: str) -> None:
        del self._items[key.lower()]

    def __contains__(self, key: object) -> bool:
        return isinstance(key, str) and key.lower() in self._items

    def __iter__(self) -> Iterator[str]:
        return (original for original, _ in self._items.values())

    def __len__(self) -> int:
        return len(self._items)

    def get(self, key: str, default: str | None = None) -> str | None:
        entry = self._items.get(key.lower())
        return entry[1] if entry else default

    def items(self) -> Iterator[tuple[str, str]]:
        return ((original, value) for original, value in self._items.values())

    def copy(self) -> "Headers":
        clone = Headers()
        clone._items = dict(self._items)
        return clone

    def __repr__(self) -> str:
        return f"Headers({dict(self.items())!r})"


@dataclass
class Request:
    """An HTTP request on the virtual internet.

    ``client_id`` identifies the requesting agent (an IP-address stand-in)
    and is what the anti-scraping middleware keys rate limits and captcha
    state on.
    """

    method: str
    url: Url
    headers: Headers = field(default_factory=Headers)
    body: str = ""
    client_id: str = "anonymous"

    @property
    def path(self) -> str:
        return self.url.path

    def param(self, name: str, default: str | None = None) -> str | None:
        """Return a query-string parameter."""
        return self.url.query_params().get(name, default)

    def cookie(self, name: str, default: str | None = None) -> str | None:
        """Return a cookie value from the ``Cookie`` header."""
        raw = self.headers.get("Cookie", "")
        for chunk in raw.split(";"):
            key, _, value = chunk.strip().partition("=")
            if key == name:
                return value
        return default


@dataclass
class Response:
    """An HTTP response.

    ``url`` is filled in by the client with the *final* URL after redirects,
    which is how the scraper detects slow/invalid invite redirects.
    """

    status: int
    headers: Headers = field(default_factory=Headers)
    body: str = ""
    url: Url | None = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def is_redirect(self) -> bool:
        return self.status in REDIRECT_STATUSES and "Location" in self.headers

    @property
    def reason(self) -> str:
        return REASON_PHRASES.get(self.status, "Unknown")

    @property
    def content_type(self) -> str:
        return (self.headers.get("Content-Type") or "").split(";")[0].strip()

    def set_cookie(self, name: str, value: str) -> None:
        """Attach a ``Set-Cookie`` header (one cookie per response suffices)."""
        self.headers["Set-Cookie"] = f"{name}={value}"

    @classmethod
    def html(cls, body: str, status: int = 200) -> "Response":
        return cls(status=status, headers=Headers({"Content-Type": "text/html; charset=utf-8"}), body=body)

    @classmethod
    def text(cls, body: str, status: int = 200) -> "Response":
        return cls(status=status, headers=Headers({"Content-Type": "text/plain; charset=utf-8"}), body=body)

    @classmethod
    def json(cls, body: str, status: int = 200) -> "Response":
        return cls(status=status, headers=Headers({"Content-Type": "application/json"}), body=body)

    @classmethod
    def redirect(cls, location: str, status: int = 302) -> "Response":
        return cls(status=status, headers=Headers({"Location": location}))

    @classmethod
    def not_found(cls, message: str = "Not Found") -> "Response":
        return cls.text(message, status=404)
