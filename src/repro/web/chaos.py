"""Chaos-grade fault injection for the virtual internet.

A :class:`FaultSchedule` is a deterministic, seeded plan of adversity that
the :class:`~repro.web.network.VirtualInternet` consults on every exchange:
time-windowed host outages, 5xx bursts, latency-degradation episodes,
rate-limit storms (including malformed ``Retry-After`` headers), captcha-wall
surges, and truncated/malformed HTML responses.

Fault *windows* are derived purely from ``(seed, kind, epoch, host bucket)``
via CRC32-seeded generators, so whether a window is open at virtual time *t*
is independent of request order; per-request intensity draws come from one
dedicated RNG, so two identical runs inject byte-identical fault streams.

Named :data:`PROFILES` (``calm``, ``flaky``, ``hostile``, ``outage``) let any
existing test or benchmark run under adversity by changing one parameter.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, replace
from enum import Enum

from repro.web.captcha import CaptchaService
from repro.web.http import Request, Response
from repro.web.network import ConnectionFailedError, VirtualClock, restore_rng, rng_state


class FaultKind(Enum):
    """The adversity classes the schedule can inject."""

    OUTAGE = "outage"  # connection refused for a time window
    ERROR_BURST = "error_burst"  # 5xx responses for a time window
    LATENCY_SPIKE = "latency_spike"  # degraded-latency episode
    RATE_LIMIT_STORM = "rate_limit_storm"  # 429 walls for a time window
    CAPTCHA_SURGE = "captcha_surge"  # captcha interstitials for a window
    TRUNCATION = "truncation"  # truncated/malformed HTML bodies


#: Kinds that open/close as time windows (truncation is per-exchange).
WINDOWED_KINDS = (
    FaultKind.OUTAGE,
    FaultKind.ERROR_BURST,
    FaultKind.LATENCY_SPIKE,
    FaultKind.RATE_LIMIT_STORM,
    FaultKind.CAPTCHA_SURGE,
)


@dataclass(frozen=True)
class ChaosProfile:
    """Named adversity level.

    ``*_rate`` values are per-epoch window probabilities (per host bucket);
    ``*_intensity`` values are per-request injection probabilities while the
    matching window is open.  ``truncation_rate`` is per-exchange and
    window-independent.  Hosts are partitioned into ``buckets`` stable hash
    buckets so an outage takes down a slice of the internet, not all of it.
    """

    name: str
    outage_rate: float = 0.0
    error_burst_rate: float = 0.0
    latency_spike_rate: float = 0.0
    rate_limit_rate: float = 0.0
    captcha_surge_rate: float = 0.0
    error_intensity: float = 0.6
    storm_intensity: float = 0.7
    captcha_intensity: float = 0.8
    truncation_rate: float = 0.0
    garbage_retry_after: float = 0.0  # fraction of injected 429s with junk header
    latency_extra: tuple[float, float] = (2.0, 10.0)
    window_duration: tuple[float, float] = (60.0, 300.0)
    epoch: float = 1200.0
    buckets: int = 4

    def scaled(self, **overrides) -> "ChaosProfile":
        """A copy with fields overridden (for tests tuning one knob)."""
        return replace(self, **overrides)

    def rate(self, kind: FaultKind) -> float:
        return {
            FaultKind.OUTAGE: self.outage_rate,
            FaultKind.ERROR_BURST: self.error_burst_rate,
            FaultKind.LATENCY_SPIKE: self.latency_spike_rate,
            FaultKind.RATE_LIMIT_STORM: self.rate_limit_rate,
            FaultKind.CAPTCHA_SURGE: self.captcha_surge_rate,
            FaultKind.TRUNCATION: self.truncation_rate,
        }[kind]


CALM = ChaosProfile(name="calm")

FLAKY = ChaosProfile(
    name="flaky",
    error_burst_rate=0.25,
    latency_spike_rate=0.20,
    rate_limit_rate=0.10,
    truncation_rate=0.01,
    error_intensity=0.5,
    garbage_retry_after=0.1,
)

HOSTILE = ChaosProfile(
    name="hostile",
    outage_rate=0.12,
    error_burst_rate=0.30,
    latency_spike_rate=0.25,
    rate_limit_rate=0.20,
    captcha_surge_rate=0.15,
    truncation_rate=0.02,
    error_intensity=0.6,
    storm_intensity=0.7,
    garbage_retry_after=0.3,
    window_duration=(60.0, 240.0),
)

OUTAGE = ChaosProfile(
    name="outage",
    outage_rate=0.5,
    window_duration=(300.0, 900.0),
    epoch=1800.0,
)

PROFILES: dict[str, ChaosProfile] = {profile.name: profile for profile in (CALM, FLAKY, HOSTILE, OUTAGE)}


def resolve_profile(profile: "ChaosProfile | str | None") -> ChaosProfile:
    """Look up a profile by name (``None`` means ``calm``)."""
    if profile is None:
        return CALM
    if isinstance(profile, ChaosProfile):
        return profile
    try:
        return PROFILES[profile]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise ValueError(f"unknown chaos profile {profile!r} (known: {known})") from None


@dataclass
class ChaosStats:
    """Counters for everything the schedule injected."""

    outages: int = 0
    error_responses: int = 0
    latency_spikes: int = 0
    rate_limited: int = 0
    captcha_walls: int = 0
    truncated_responses: int = 0

    @property
    def total_injected(self) -> int:
        return (
            self.outages
            + self.error_responses
            + self.rate_limited
            + self.captcha_walls
            + self.truncated_responses
        )


@dataclass(frozen=True)
class FaultWindow:
    """A resolved fault window for one (kind, epoch, bucket) cell."""

    kind: FaultKind
    start: float
    end: float
    magnitude: float = 0.0  # extra latency seconds for LATENCY_SPIKE

    def covers(self, now: float) -> bool:
        return self.start <= now < self.end


def _stable_bucket(host: str, buckets: int) -> int:
    return zlib.crc32(host.lower().encode("utf-8")) % max(buckets, 1)


class FaultSchedule:
    """Deterministic adversity plan consulted per exchange.

    Attach with :meth:`VirtualInternet.install_chaos`; the internet then
    calls :meth:`extra_latency`, :meth:`intercept` and :meth:`mangle` around
    every exchange.  All decisions derive from the seed, so identical runs
    inject identical fault streams.
    """

    #: Requests a client may make after solving a surge captcha before
    #: being re-challenged (mirrors CaptchaWallMiddleware's clearance).
    CAPTCHA_CLEARANCE = 25

    def __init__(self, profile: ChaosProfile | str = "calm", seed: int = 0) -> None:
        self.profile = resolve_profile(profile)
        self.seed = seed
        self.stats = ChaosStats()
        self._draw_rng = random.Random(zlib.crc32(f"{seed}:draws".encode("utf-8")))
        self._window_cache: dict[tuple[str, int, int], FaultWindow | None] = {}
        self._clearances: dict[str, int] = {}
        self._clock: VirtualClock | None = None
        self._captcha: CaptchaService | None = None

    # -- wiring --------------------------------------------------------------

    def bind(self, clock: VirtualClock) -> None:
        """Attach to a clock (called by ``VirtualInternet.install_chaos``)."""
        self._clock = clock
        self._captcha = CaptchaService(clock, seed=zlib.crc32(f"{self.seed}:captcha".encode("utf-8")))

    @property
    def captcha_service(self) -> CaptchaService | None:
        return self._captcha

    # -- resume support ------------------------------------------------------

    def state_dict(self) -> dict:
        """Order-coupled schedule state (window cache is pure and excluded)."""
        state = {
            "rng": rng_state(self._draw_rng),
            "clearances": dict(self._clearances),
            "stats": vars(self.stats).copy(),
        }
        if self._captcha is not None:
            state["captcha"] = self._captcha.state_dict()
        return state

    def restore_state(self, state: dict) -> None:
        restore_rng(self._draw_rng, state["rng"])
        self._clearances = dict(state["clearances"])
        for name, value in state["stats"].items():
            setattr(self.stats, name, value)  # in place: callers may hold a reference
        if self._captcha is not None and "captcha" in state:
            self._captcha.restore_state(state["captcha"])

    # -- window resolution ---------------------------------------------------

    def window_for(self, kind: FaultKind, host: str, now: float) -> FaultWindow | None:
        """The open window covering ``now`` for this kind/host, if any."""
        rate = self.profile.rate(kind)
        if rate <= 0 or kind is FaultKind.TRUNCATION or now < 0:
            return None
        epoch_index = int(now // self.profile.epoch)
        bucket = _stable_bucket(host, self.profile.buckets)
        key = (kind.value, epoch_index, bucket)
        if key not in self._window_cache:
            self._window_cache[key] = self._resolve_window(kind, epoch_index, bucket, rate)
        window = self._window_cache[key]
        if window is not None and window.covers(now):
            return window
        return None

    def _resolve_window(self, kind: FaultKind, epoch_index: int, bucket: int, rate: float) -> FaultWindow | None:
        material = f"{self.seed}:{kind.value}:{epoch_index}:{bucket}".encode("utf-8")
        rng = random.Random(zlib.crc32(material))
        if rng.random() >= rate:
            return None
        epoch_start = epoch_index * self.profile.epoch
        low, high = self.profile.window_duration
        duration = min(rng.uniform(low, high), self.profile.epoch)
        start = epoch_start + rng.uniform(0.0, max(self.profile.epoch - duration, 0.0))
        magnitude = rng.uniform(*self.profile.latency_extra)
        return FaultWindow(kind=kind, start=start, end=start + duration, magnitude=magnitude)

    def faults_at(self, host: str, now: float) -> set[FaultKind]:
        """All window kinds open for ``host`` at virtual time ``now``."""
        return {kind for kind in WINDOWED_KINDS if self.window_for(kind, host, now) is not None}

    # -- exchange hooks ------------------------------------------------------

    def extra_latency(self, host: str, now: float) -> float:
        """Additional seconds of latency for an exchange starting at ``now``."""
        window = self.window_for(FaultKind.LATENCY_SPIKE, host, now)
        if window is None:
            return 0.0
        self.stats.latency_spikes += 1
        return window.magnitude

    def intercept(self, request: Request, now: float) -> Response | None:
        """Chance to hijack an exchange before the host sees it.

        Returns an injected response, ``None`` to pass through, or raises
        :class:`ConnectionFailedError` for an outage.
        """
        host = request.url.host.lower()
        if self.window_for(FaultKind.OUTAGE, host, now) is not None:
            self.stats.outages += 1
            raise ConnectionFailedError(f"{host} (chaos outage)")

        if self.window_for(FaultKind.RATE_LIMIT_STORM, host, now) is not None:
            if self._draw_rng.random() < self.profile.storm_intensity:
                self.stats.rate_limited += 1
                return self._rate_limit_response()

        if self.window_for(FaultKind.CAPTCHA_SURGE, host, now) is not None:
            hijacked = self._captcha_gate(request)
            if hijacked is not None:
                return hijacked

        if self.window_for(FaultKind.ERROR_BURST, host, now) is not None:
            if self._draw_rng.random() < self.profile.error_intensity:
                self.stats.error_responses += 1
                return Response.text("chaos: upstream unavailable", status=503)
        return None

    def mangle(self, request: Request, response: Response, now: float) -> Response:
        """Post-process a real response (body truncation)."""
        rate = self.profile.truncation_rate
        if rate <= 0 or response.status != 200 or len(response.body) < 64:
            return response
        if self._draw_rng.random() >= rate:
            return response
        self.stats.truncated_responses += 1
        response.body = response.body[: len(response.body) // 2]
        return response

    # -- injected walls ------------------------------------------------------

    def _rate_limit_response(self) -> Response:
        response = Response.text("chaos: rate limit storm", status=429)
        if self._draw_rng.random() < self.profile.garbage_retry_after:
            response.headers["Retry-After"] = "a while"
        else:
            response.headers["Retry-After"] = f"{self._draw_rng.uniform(1.0, 8.0):.2f}"
        return response

    def _captcha_gate(self, request: Request) -> Response | None:
        """Serve/verify a surge captcha; ``None`` lets the request through."""
        if self._captcha is None:  # unbound schedule: consult-only mode
            return None
        client = request.client_id
        challenge_id = request.param("captcha_id")
        answer = request.param("captcha_answer")
        if challenge_id and answer is not None:
            if self._captcha.verify(challenge_id, answer):
                self._clearances[client] = self.CAPTCHA_CLEARANCE
                return None
            return self._challenge_response()
        remaining = self._clearances.get(client, 0)
        if remaining > 0:
            self._clearances[client] = remaining - 1
            return None
        if self._draw_rng.random() >= self.profile.captcha_intensity:
            return None
        return self._challenge_response()

    def _challenge_response(self) -> Response:
        assert self._captcha is not None
        challenge = self._captcha.issue()
        self.stats.captcha_walls += 1
        body = (
            "<html><head><title>Security check</title></head><body>"
            "<h1>Please verify you are human</h1>"
            f'<div id="captcha-challenge" data-challenge-id="{challenge.challenge_id}">'
            f"<p class='prompt'>{challenge.prompt}</p></div>"
            "</body></html>"
        )
        return Response.html(body, status=403)
