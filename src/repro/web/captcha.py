"""Captcha challenges and a paid solving service.

The paper's scraper meets two captcha deployments: the bot repository's
anti-scraping wall and Google reCAPTCHA on Discord's bot-install flow.  Both
were defeated with the commercial "2Captcha" service chosen for "its
affordability and quick solving time".  We model captchas as small arithmetic
challenges — enough structure for a solver to be genuinely *solving*
something — and a :class:`TwoCaptchaClient` that charges per solve, takes
simulated time, and occasionally fails.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.web.network import VirtualClock, restore_rng, rng_state


class CaptchaError(Exception):
    """Base class for captcha failures."""


class CaptchaSolveError(CaptchaError):
    """The solving service returned a wrong answer or gave up."""


class InsufficientBalanceError(CaptchaError):
    """The solving-service account ran out of funds."""


@dataclass
class CaptchaChallenge:
    """One issued challenge. ``prompt`` is what a page embeds."""

    challenge_id: str
    prompt: str
    answer: str
    issued_at: float


@dataclass
class CaptchaStats:
    issued: int = 0
    verified: int = 0
    rejected: int = 0


class CaptchaService:
    """Issues and verifies arithmetic challenges (server side).

    Challenges are single-use: verification consumes them, so replaying a
    solved captcha does not grant a second clearance.
    """

    _OPERATORS = (("+", lambda a, b: a + b), ("-", lambda a, b: a - b), ("*", lambda a, b: a * b))

    def __init__(self, clock: VirtualClock, seed: int = 0) -> None:
        self.clock = clock
        self._rng = random.Random(seed)
        self._pending: dict[str, CaptchaChallenge] = {}
        self._counter = 0
        self.stats = CaptchaStats()

    def issue(self) -> CaptchaChallenge:
        self._counter += 1
        a, b = self._rng.randint(2, 19), self._rng.randint(2, 9)
        symbol, operation = self._rng.choice(self._OPERATORS)
        challenge = CaptchaChallenge(
            challenge_id=f"ch-{self._counter:08d}",
            prompt=f"What is {a} {symbol} {b}?",
            answer=str(operation(a, b)),
            issued_at=self.clock.now(),
        )
        self._pending[challenge.challenge_id] = challenge
        self.stats.issued += 1
        return challenge

    def verify(self, challenge_id: str, answer: str) -> bool:
        challenge = self._pending.pop(challenge_id, None)
        if challenge is not None and challenge.answer == str(answer).strip():
            self.stats.verified += 1
            return True
        self.stats.rejected += 1
        return False

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def state_dict(self) -> dict:
        return {
            "rng": rng_state(self._rng),
            "counter": self._counter,
            "pending": [vars(challenge).copy() for challenge in self._pending.values()],
            "stats": vars(self.stats).copy(),
        }

    def restore_state(self, state: dict) -> None:
        restore_rng(self._rng, state["rng"])
        self._counter = state["counter"]
        self._pending = {
            payload["challenge_id"]: CaptchaChallenge(**payload) for payload in state["pending"]
        }
        for name, value in state["stats"].items():
            setattr(self.stats, name, value)  # in place: callers may hold a reference


@dataclass
class SolveRecord:
    prompt: str
    answer: str
    cost: float
    duration: float
    succeeded: bool


class TwoCaptchaClient:
    """Client for a commercial captcha-solving service.

    Solving costs money (``price_per_solve``) and simulated time
    (``solve_time`` seconds on the virtual clock).  With probability
    ``1 - accuracy`` the human worker misreads the challenge and the client
    raises :class:`CaptchaSolveError` after still charging the account —
    exactly the economics a measurement team budgets for.
    """

    def __init__(
        self,
        clock: VirtualClock,
        balance: float = 50.0,
        price_per_solve: float = 0.003,
        solve_time: float = 8.0,
        accuracy: float = 0.98,
        seed: int = 0,
    ) -> None:
        self.clock = clock
        self.balance = balance
        self.price_per_solve = price_per_solve
        self.solve_time = solve_time
        self.accuracy = accuracy
        self._rng = random.Random(seed)
        self.history: list[SolveRecord] = []

    @property
    def total_spent(self) -> float:
        return sum(record.cost for record in self.history)

    def state_dict(self, include_history: bool = False) -> dict:
        """Account state; solve ``history`` only on request — per-unit
        journal records carry history as appended deltas instead."""
        state = {"balance": self.balance, "rng": rng_state(self._rng)}
        if include_history:
            state["history"] = [vars(record).copy() for record in self.history]
        return state

    def restore_state(self, state: dict) -> None:
        self.balance = state["balance"]
        restore_rng(self._rng, state["rng"])
        if "history" in state:
            self.history = [SolveRecord(**payload) for payload in state["history"]]

    @property
    def solves_attempted(self) -> int:
        return len(self.history)

    def solve(self, prompt: str) -> str:
        """Return the answer for an arithmetic ``prompt``.

        Raises :class:`InsufficientBalanceError` when funds run out and
        :class:`CaptchaSolveError` on a (charged) failed solve.
        """
        if self.balance < self.price_per_solve:
            raise InsufficientBalanceError(f"balance {self.balance:.3f} below price {self.price_per_solve:.3f}")
        self.balance -= self.price_per_solve
        self.clock.sleep(self.solve_time)
        answer = self._read_prompt(prompt)
        succeeded = self._rng.random() < self.accuracy and answer is not None
        self.history.append(
            SolveRecord(
                prompt=prompt,
                answer=answer or "",
                cost=self.price_per_solve,
                duration=self.solve_time,
                succeeded=succeeded,
            )
        )
        if not succeeded:
            raise CaptchaSolveError(f"worker failed to solve: {prompt!r}")
        assert answer is not None
        return answer

    def solve_with_retries(self, prompt: str, attempts: int = 3, policy: "object | None" = None) -> str:
        """Retry failed solves; each attempt is charged.

        :class:`InsufficientBalanceError` propagates immediately — retrying
        cannot refill the account.  With a
        :class:`repro.core.resilience.RetryPolicy` as ``policy``, failed
        solves back off on the virtual clock between attempts and the
        policy's ``max_attempts`` replaces ``attempts``.
        """
        if policy is not None:
            attempts = policy.max_attempts
        last: CaptchaSolveError | None = None
        for attempt in range(max(attempts, 1)):
            try:
                return self.solve(prompt)
            except CaptchaSolveError as error:
                last = error
                if policy is not None and policy.should_retry(attempt + 1):
                    self.clock.sleep(policy.delay(attempt))
        assert last is not None
        raise last

    @staticmethod
    def _read_prompt(prompt: str) -> str | None:
        import re

        match = re.search(r"(-?\d+)\s*([+\-*])\s*(-?\d+)", prompt)
        if not match:
            return None
        a, symbol, b = int(match.group(1)), match.group(2), int(match.group(3))
        if symbol == "+":
            return str(a + b)
        if symbol == "-":
            return str(a - b)
        return str(a * b)
