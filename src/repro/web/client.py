"""HTTP client for the virtual internet.

Implements the behaviours the paper's scraper depends on: timeouts (slow
redirect links "timed out"), bounded redirect following (invalid invite
links), retries with backoff, and per-host cookies (captcha clearance
tokens are delivered as cookies by the anti-scraping middleware).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.web.http import Headers, Request, Response, Url
from repro.web.network import ConnectionFailedError, NetworkError, VirtualInternet


class RequestTimeoutError(NetworkError):
    """The exchange took longer than the caller's timeout budget."""

    def __init__(self, url: str, timeout: float) -> None:
        super().__init__(f"timed out after {timeout:.2f}s fetching {url}")
        self.url = url
        self.timeout = timeout


class TooManyRedirectsError(NetworkError):
    """Redirect chain exceeded ``max_redirects``."""

    def __init__(self, url: str, limit: int) -> None:
        super().__init__(f"more than {limit} redirects fetching {url}")
        self.url = url
        self.limit = limit


@dataclass
class CookieJar:
    """Per-host cookie storage (name -> value)."""

    _cookies: dict[str, dict[str, str]] = field(default_factory=dict)

    def store(self, host: str, set_cookie: str) -> None:
        name, _, value = set_cookie.split(";")[0].partition("=")
        if name:
            self._cookies.setdefault(host, {})[name.strip()] = value.strip()

    def header_for(self, host: str) -> str:
        cookies = self._cookies.get(host, {})
        return "; ".join(f"{name}={value}" for name, value in sorted(cookies.items()))

    def get(self, host: str, name: str) -> str | None:
        return self._cookies.get(host, {}).get(name)

    def set(self, host: str, name: str, value: str) -> None:
        self._cookies.setdefault(host, {})[name] = value

    def clear(self) -> None:
        self._cookies.clear()

    def state_dict(self) -> dict:
        return {host: dict(cookies) for host, cookies in self._cookies.items()}

    def restore_state(self, state: dict) -> None:
        self._cookies = {host: dict(cookies) for host, cookies in state.items()}


class HttpClient:
    """A cookie-aware HTTP client bound to one ``client_id``.

    ``client_id`` plays the role of the scraper's source IP: the
    anti-scraping middleware keys rate limits and captcha state on it.
    """

    def __init__(
        self,
        internet: VirtualInternet,
        client_id: str = "scraper",
        default_timeout: float = 10.0,
        max_redirects: int = 10,
        user_agent: str = "repro-scraper/1.0",
    ) -> None:
        self.internet = internet
        self.client_id = client_id
        self.default_timeout = default_timeout
        self.max_redirects = max_redirects
        self.user_agent = user_agent
        self.cookies = CookieJar()
        self.requests_sent = 0

    # -- public API ----------------------------------------------------------

    def get(
        self,
        url: str | Url,
        timeout: float | None = None,
        follow_redirects: bool = True,
        headers: Headers | None = None,
    ) -> Response:
        return self.request("GET", url, timeout=timeout, follow_redirects=follow_redirects, headers=headers)

    def post(
        self,
        url: str | Url,
        body: str = "",
        timeout: float | None = None,
        headers: Headers | None = None,
    ) -> Response:
        return self.request("POST", url, body=body, timeout=timeout, headers=headers)

    def request(
        self,
        method: str,
        url: str | Url,
        body: str = "",
        timeout: float | None = None,
        follow_redirects: bool = True,
        headers: Headers | None = None,
    ) -> Response:
        """Issue a request, following redirects within the timeout budget.

        The timeout budget covers the *whole* chain, which is how the paper's
        scraper classified slow invite redirect chains as invalid.
        """
        budget = timeout if timeout is not None else self.default_timeout
        current = Url.parse(str(url))
        if not current.is_absolute:
            raise ValueError(f"relative URL given to client: {url!r}")
        spent = 0.0
        for _ in range(self.max_redirects + 1):
            response, latency = self._exchange(method, current, body, headers)
            spent += latency
            if spent > budget:
                raise RequestTimeoutError(str(current), budget)
            response.url = current
            if follow_redirects and response.is_redirect:
                current = current.join(response.headers["Location"])
                method, body = "GET", ""
                continue
            return response
        raise TooManyRedirectsError(str(url), self.max_redirects)

    def get_with_retries(
        self,
        url: str | Url,
        attempts: int = 3,
        backoff: float = 0.5,
        timeout: float | None = None,
        policy: "object | None" = None,
    ) -> Response:
        """GET with bounded retries on transport errors (not HTTP errors).

        Backoff between attempts is applied on the virtual clock, matching
        the rate-limiting discipline described in the methodology.  Passing a
        :class:`repro.core.resilience.RetryPolicy` as ``policy`` makes this
        loop use the repo-wide retry definition (``attempts``/``backoff``
        are ignored in that case).
        """
        if policy is None:
            from repro.core.resilience import RetryPolicy

            policy = RetryPolicy(max_attempts=attempts, base_delay=backoff, multiplier=2.0)
        if policy.max_attempts < 1:
            raise ValueError("attempts must be >= 1")
        last_error: NetworkError | None = None
        attempt = 0
        while True:
            try:
                return self.get(url, timeout=timeout)
            except (ConnectionFailedError, RequestTimeoutError) as error:
                last_error = error
                if not policy.should_retry(attempt + 1):
                    break
                self.internet.clock.sleep(policy.delay(attempt))
                attempt += 1
        assert last_error is not None
        raise last_error

    # -- internals -----------------------------------------------------------

    def _exchange(self, method: str, url: Url, body: str, extra: Headers | None) -> tuple[Response, float]:
        request_headers = Headers({"User-Agent": self.user_agent, "Host": url.host})
        cookie_header = self.cookies.header_for(url.host)
        if cookie_header:
            request_headers["Cookie"] = cookie_header
        if extra:
            for key, value in extra.items():
                request_headers[key] = value
        request = Request(method=method, url=url, headers=request_headers, body=body, client_id=self.client_id)
        self.requests_sent += 1
        response, latency = self.internet.exchange(request)
        set_cookie = response.headers.get("Set-Cookie")
        if set_cookie:
            self.cookies.store(url.host, set_cookie)
        return response, latency
