"""HTML parsing and CSS-style element location.

This is the substrate for the Selenium-like locator API in
:mod:`repro.web.browser`.  The parser is built on :mod:`html.parser` and
produces a tree of :class:`Element` nodes; :func:`select` implements the
selector subset the scraper uses:

- type selectors (``a``, ``div``), universal ``*``
- ``#id``, ``.class``, attribute ``[href]``, ``[rel=value]``,
  ``[href^=prefix]``, ``[href*=substring]``, ``[href$=suffix]``
- compound selectors (``a.bot-link[data-id]``)
- descendant (whitespace) and child (``>``) combinators
- selector groups separated by commas
"""

from __future__ import annotations

import re
from html.parser import HTMLParser
from typing import Iterator

#: Elements that never have a closing tag.
VOID_TAGS = frozenset(
    {"area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param", "source", "track", "wbr"}
)


class Element:
    """One node of the parsed document tree."""

    __slots__ = ("tag", "attrs", "children", "parent", "_text_chunks")

    def __init__(self, tag: str, attrs: dict[str, str] | None = None, parent: "Element | None" = None) -> None:
        self.tag = tag
        self.attrs = attrs or {}
        self.children: list[Element] = []
        self.parent = parent
        self._text_chunks: list[str] = []

    # -- content --------------------------------------------------------------

    def append_text(self, chunk: str) -> None:
        if chunk:
            self._text_chunks.append(chunk)

    @property
    def own_text(self) -> str:
        """Text directly inside this element (not descendants)."""
        return "".join(self._text_chunks)

    @property
    def text(self) -> str:
        """All descendant text, whitespace-normalised."""
        chunks: list[str] = []
        self._collect_text(chunks)
        return re.sub(r"\s+", " ", "".join(chunks)).strip()

    def _collect_text(self, into: list[str]) -> None:
        into.append(self.own_text)
        for child in self.children:
            into.append(" ")
            child._collect_text(into)

    # -- attributes -------------------------------------------------------------

    def get(self, name: str, default: str | None = None) -> str | None:
        return self.attrs.get(name, default)

    @property
    def id(self) -> str | None:
        return self.attrs.get("id")

    @property
    def classes(self) -> frozenset[str]:
        return frozenset((self.attrs.get("class") or "").split())

    # -- traversal ---------------------------------------------------------------

    def iter(self) -> Iterator["Element"]:
        """Depth-first iteration over this element and all descendants."""
        yield self
        for child in self.children:
            yield from child.iter()

    def descendants(self) -> Iterator["Element"]:
        for child in self.children:
            yield from child.iter()

    def find_all(self, tag: str) -> list["Element"]:
        return [node for node in self.descendants() if node.tag == tag]

    def select(self, selector: str) -> list["Element"]:
        return select(self, selector)

    def select_one(self, selector: str) -> "Element | None":
        matches = select(self, selector)
        return matches[0] if matches else None

    def links(self) -> list[str]:
        """All non-empty ``href`` attributes below this element."""
        return [anchor.attrs["href"] for anchor in self.find_all("a") if anchor.attrs.get("href")]

    def __repr__(self) -> str:
        ident = f"#{self.id}" if self.id else ""
        cls = "." + ".".join(sorted(self.classes)) if self.classes else ""
        return f"<Element {self.tag}{ident}{cls}>"


class _TreeBuilder(HTMLParser):
    """Builds the Element tree, tolerating unclosed tags like a browser."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.root = Element("document")
        self._stack: list[Element] = [self.root]

    def handle_starttag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        element = Element(tag, {name: (value or "") for name, value in attrs}, parent=self._stack[-1])
        self._stack[-1].children.append(element)
        if tag not in VOID_TAGS:
            self._stack.append(element)

    def handle_startendtag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        element = Element(tag, {name: (value or "") for name, value in attrs}, parent=self._stack[-1])
        self._stack[-1].children.append(element)

    def handle_endtag(self, tag: str) -> None:
        # Pop back to the matching open tag, ignoring stray closers.
        for index in range(len(self._stack) - 1, 0, -1):
            if self._stack[index].tag == tag:
                del self._stack[index:]
                return

    def handle_data(self, data: str) -> None:
        self._stack[-1].append_text(data)


def parse_html(markup: str) -> Element:
    """Parse ``markup`` into a document-rooted :class:`Element` tree."""
    builder = _TreeBuilder()
    builder.feed(markup)
    builder.close()
    return builder.root


# --------------------------------------------------------------------------
# CSS selector engine
# --------------------------------------------------------------------------

_SIMPLE_RE = re.compile(
    r"""
    (?P<tag>\*|[a-zA-Z][a-zA-Z0-9-]*)?
    (?P<parts>(?:\#[\w-]+|\.[\w-]+|\[[^\]]+\])*)
    """,
    re.VERBOSE,
)
_PART_RE = re.compile(r"\#([\w-]+)|\.([\w-]+)|\[([^\]]+)\]")
_ATTR_RE = re.compile(r"^([\w-]+)\s*(?:([~^$*|]?=)\s*(.*))?$")


class _Compound:
    """One compound selector: tag + ids + classes + attribute tests."""

    __slots__ = ("tag", "ids", "classes", "attr_tests")

    def __init__(self, token: str) -> None:
        match = _SIMPLE_RE.fullmatch(token)
        if not match or (not match.group("tag") and not match.group("parts")):
            raise ValueError(f"unsupported selector token: {token!r}")
        self.tag = match.group("tag") or "*"
        self.ids: list[str] = []
        self.classes: list[str] = []
        self.attr_tests: list[tuple[str, str, str]] = []
        for id_name, class_name, attr_body in _PART_RE.findall(match.group("parts") or ""):
            if id_name:
                self.ids.append(id_name)
            elif class_name:
                self.classes.append(class_name)
            else:
                attr_match = _ATTR_RE.match(attr_body.strip())
                if not attr_match:
                    raise ValueError(f"unsupported attribute selector: [{attr_body}]")
                name, operator, raw_value = attr_match.groups()
                value = (raw_value or "").strip("\"'")
                self.attr_tests.append((name, operator or "", value))

    def matches(self, element: Element) -> bool:
        if self.tag != "*" and element.tag != self.tag:
            return False
        if any(element.id != wanted for wanted in self.ids):
            return False
        if any(wanted not in element.classes for wanted in self.classes):
            return False
        for name, operator, value in self.attr_tests:
            actual = element.attrs.get(name)
            if actual is None:
                return False
            if operator == "" and value == "":
                continue
            if operator == "=" and actual != value:
                return False
            if operator == "^=" and not actual.startswith(value):
                return False
            if operator == "$=" and not actual.endswith(value):
                return False
            if operator == "*=" and value not in actual:
                return False
            if operator == "~=" and value not in actual.split():
                return False
        return True


def _tokenize_group(group: str) -> list[tuple[str, _Compound]]:
    """Split one selector group into ``(combinator, compound)`` steps."""
    tokens = re.findall(r">|[^\s>]+", group)
    steps: list[tuple[str, _Compound]] = []
    combinator = " "
    for token in tokens:
        if token == ">":
            combinator = ">"
            continue
        steps.append((combinator, _Compound(token)))
        combinator = " "
    if not steps:
        raise ValueError(f"empty selector group: {group!r}")
    return steps


def select(root: Element, selector: str) -> list[Element]:
    """Return descendants of ``root`` matching ``selector``, in document order."""
    results: list[Element] = []
    seen: set[int] = set()
    for group in selector.split(","):
        group = group.strip()
        if not group:
            continue
        steps = _tokenize_group(group)
        current: list[Element] = [root]
        for combinator, compound in steps:
            next_set: list[Element] = []
            bucket: set[int] = set()
            for base in current:
                candidates = base.descendants() if combinator == " " else iter(base.children)
                for candidate in candidates:
                    if id(candidate) not in bucket and compound.matches(candidate):
                        bucket.add(id(candidate))
                        next_set.append(candidate)
            current = next_set
        for element in current:
            if id(element) not in seen:
                seen.add(id(element))
                results.append(element)
    order = {id(node): index for index, node in enumerate(root.iter())}
    results.sort(key=lambda node: order.get(id(node), 1 << 30))
    return results
