"""Virtual HTTP hosts: routing and middleware.

A :class:`VirtualHost` is what gets registered on the
:class:`~repro.web.network.VirtualInternet`.  Routes use ``{param}`` path
segments; middleware wraps the route chain and is how
:mod:`repro.web.antiscrape` injects rate limits and captcha walls.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol

from repro.web.http import Request, Response

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.web.network import VirtualInternet

Handler = Callable[..., Response]


class Middleware(Protocol):
    """Middleware signature: may short-circuit or call ``next_handler``."""

    def __call__(self, request: Request, next_handler: Callable[[Request], Response]) -> Response: ...


@dataclass
class Route:
    """A compiled route: method + ``{param}`` pattern + handler."""

    method: str
    pattern: str
    handler: Handler
    regex: re.Pattern[str]

    @classmethod
    def compile(cls, method: str, pattern: str, handler: Handler) -> "Route":
        """Compile a pattern.  ``{name}`` matches one segment; ``{*name}``
        matches the rest of the path (slashes included)."""
        parts: list[str] = []
        for segment in re.split(r"(\{\*?[a-zA-Z_][a-zA-Z0-9_]*\})", pattern):
            if segment.startswith("{*") and segment.endswith("}"):
                parts.append(f"(?P<{segment[2:-1]}>.+)")
            elif segment.startswith("{") and segment.endswith("}"):
                parts.append(f"(?P<{segment[1:-1]}>[^/]+)")
            else:
                parts.append(re.escape(segment))
        return cls(method=method.upper(), pattern=pattern, handler=handler, regex=re.compile("^" + "".join(parts) + "$"))

    def match(self, method: str, path: str) -> dict[str, str] | None:
        if method.upper() != self.method:
            return None
        found = self.regex.match(path)
        return found.groupdict() if found else None


class VirtualHost:
    """A routable HTTP host with a middleware chain.

    Subclasses (or callers) register handlers with :meth:`route`; handlers
    receive ``(request, **path_params)`` and return a
    :class:`~repro.web.http.Response`.
    """

    def __init__(self, name: str = "host") -> None:
        self.name = name
        self._routes: list[Route] = []
        self._middleware: list[Middleware] = []
        self.requests_served = 0

    # -- configuration -----------------------------------------------------

    def route(self, pattern: str, method: str = "GET") -> Callable[[Handler], Handler]:
        """Decorator form: ``@host.route("/bots/{bot_id}")``."""

        def register(handler: Handler) -> Handler:
            self.add_route(pattern, handler, method=method)
            return handler

        return register

    def add_route(self, pattern: str, handler: Handler, method: str = "GET") -> None:
        self._routes.append(Route.compile(method, pattern, handler))

    def add_middleware(self, middleware: Middleware) -> None:
        """Append middleware; the first added runs outermost."""
        self._middleware.append(middleware)

    # -- resume support ------------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable host state: request counter plus any stateful
        middleware (keyed by position and class so restore can't mismatch)."""
        state: dict = {"requests_served": self.requests_served}
        middleware = {
            f"{index}:{type(entry).__name__}": entry.state_dict()
            for index, entry in enumerate(self._middleware)
            if hasattr(entry, "state_dict")
        }
        if middleware:
            state["middleware"] = middleware
        return state

    def restore_state(self, state: dict) -> None:
        self.requests_served = state.get("requests_served", self.requests_served)
        stored = state.get("middleware", {})
        for index, entry in enumerate(self._middleware):
            key = f"{index}:{type(entry).__name__}"
            if key in stored and hasattr(entry, "restore_state"):
                entry.restore_state(stored[key])

    # -- dispatch ------------------------------------------------------------

    def handle(self, request: Request, internet: "VirtualInternet | None" = None) -> Response:
        """Run the middleware chain and dispatch to the matching route."""
        self.requests_served += 1
        handler: Callable[[Request], Response] = self._dispatch
        for middleware in reversed(self._middleware):
            handler = _wrap(middleware, handler)
        return handler(request)

    def _dispatch(self, request: Request) -> Response:
        for route in self._routes:
            params = route.match(request.method, request.path)
            if params is not None:
                return route.handler(request, **params)
        return Response.not_found(f"{self.name}: no route for {request.method} {request.path}")


def _wrap(middleware: Middleware, inner: Callable[[Request], Response]) -> Callable[[Request], Response]:
    def wrapped(request: Request) -> Response:
        return middleware(request, inner)

    return wrapped
