"""GitHub crawler: code-section detection, language and source retrieval.

Per the paper: "We built a Web scraper that visits the GitHub links ... to
check for the presence of the GitHub code section.  If this is found, we
then analyze the repository.  The scraper will then check for languages
used for the code and extracts the first (main) language provided for the
repository."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scraper.base import PoliteScraper
from repro.web.browser import By, NoSuchElementException, TimeoutException, WebDriverException


@dataclass
class RepoFetchResult:
    """Outcome of crawling one GitHub link."""

    link_valid: bool  # resolved to a repository page with a code section
    main_language: str | None = None
    files: dict[str, str] = field(default_factory=dict)

    @property
    def has_source_code(self) -> bool:
        """True when the repo contains files in an identified language."""
        return self.link_valid and self.main_language is not None


class GitHubScraper(PoliteScraper):
    """Crawl one repository link end to end."""

    def fetch_repo(self, repo_url: str, download_files: bool = True) -> RepoFetchResult:
        try:
            response = self.fetch(repo_url)
        except (TimeoutException, WebDriverException):
            return RepoFetchResult(link_valid=False)
        if response.status != 200:
            return RepoFetchResult(link_valid=False)
        # The code section is what distinguishes a repository page from a
        # user profile / empty account page.
        try:
            self.browser.find_element(By.ID, "code-section")
        except NoSuchElementException:
            return RepoFetchResult(link_valid=False)
        main_language = self._main_language()
        result = RepoFetchResult(link_valid=True, main_language=main_language)
        if download_files:
            result.files = self._download_files(repo_url)
        return result

    def _main_language(self) -> str | None:
        """The first (main) language in the repository's language bar."""
        elements = self.browser.find_elements(By.CSS_SELECTOR, "span.language-name")
        return elements[0].text if elements else None

    def _download_files(self, repo_url: str) -> dict[str, str]:
        links = [
            (element.text, element.get_attribute("href"))
            for element in self.browser.find_elements(By.CSS_SELECTOR, "a.file-link")
        ]
        files: dict[str, str] = {}
        base = self.browser.current_url
        for path, href in links:
            if not href:
                continue
            try:
                response = self.fetch(str(base.join(href)))
            except (TimeoutException, WebDriverException):
                continue
            if response.status == 200:
                files[path] = response.body
        return files
