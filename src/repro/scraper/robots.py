"""Minimal robots.txt support for the polite scraper.

The paper's ethics section commits to crawling "at a rate that does not
create any disruption to other service users"; honouring each host's
published ``Crawl-delay`` (and ``Disallow`` rules) is the mechanical form
of that commitment.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RobotsPolicy:
    """Parsed rules for the wildcard user-agent."""

    crawl_delay: float = 0.0
    disallowed_prefixes: tuple[str, ...] = ()
    fetched: bool = False

    def allows(self, path: str) -> bool:
        return not any(path.startswith(prefix) for prefix in self.disallowed_prefixes if prefix)


def parse_robots_txt(body: str) -> RobotsPolicy:
    """Parse the ``User-agent: *`` group of a robots.txt body.

    Only the directives the scraper acts on are kept: ``Crawl-delay`` and
    ``Disallow``.  Groups for specific user agents are ignored (the
    measurement scraper does not advertise a special identity).
    """
    crawl_delay = 0.0
    disallowed: list[str] = []
    applies = False
    for raw_line in body.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line or ":" not in line:
            continue
        directive, _, value = line.partition(":")
        directive = directive.strip().lower()
        value = value.strip()
        if directive == "user-agent":
            applies = value == "*"
        elif applies and directive == "crawl-delay":
            try:
                crawl_delay = max(crawl_delay, float(value))
            except ValueError:
                continue
        elif applies and directive == "disallow":
            if value:
                disallowed.append(value)
    return RobotsPolicy(crawl_delay=crawl_delay, disallowed_prefixes=tuple(disallowed), fetched=True)


@dataclass
class RobotsCache:
    """Per-host robots policies, fetched lazily through an HTTP client."""

    _policies: dict[str, RobotsPolicy] = field(default_factory=dict)

    def state_dict(self) -> dict:
        return {
            host: {
                "crawl_delay": policy.crawl_delay,
                "disallowed": list(policy.disallowed_prefixes),
                "fetched": policy.fetched,
            }
            for host, policy in self._policies.items()
        }

    def restore_state(self, state: dict) -> None:
        self._policies = {
            host: RobotsPolicy(
                crawl_delay=payload["crawl_delay"],
                disallowed_prefixes=tuple(payload["disallowed"]),
                fetched=payload["fetched"],
            )
            for host, payload in state.items()
        }

    def policy_for(self, client, host: str) -> RobotsPolicy:
        """Return (fetching once if needed) the policy for ``host``."""
        cached = self._policies.get(host)
        if cached is not None:
            return cached
        from repro.web.network import NetworkError

        try:
            response = client.get(f"https://{host}/robots.txt", timeout=5.0)
        except NetworkError:
            policy = RobotsPolicy(fetched=False)
        else:
            policy = parse_robots_txt(response.body) if response.ok else RobotsPolicy(fetched=True)
        self._policies[host] = policy
        return policy
