"""Listing-site crawler: the "top chatbot" traversal.

Walks every page of the top list, opens every bot's detail page, extracts
the metadata tuple the paper records (ID, name, URL, tags, permissions,
guild count, description, GitHub link) and resolves each invite link to a
consent page to read the requested permissions — classifying invalid
invites exactly as the paper does (bad links, removed bots, slow-redirect
timeouts).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.discordsim.permissions import Permissions, permission_from_name
from repro.scraper.base import CaptchaBudgetExhaustedError, PoliteScraper, try_locators
from repro.web.browser import By, NoSuchElementException, TimeoutException, WebDriverException
from repro.web.network import NetworkError

TOPGG_BASE = "https://top.gg.sim"
TOPGG_HOST = "top.gg.sim"

#: Degradation callback: ``on_fault(host, error, bots_skipped, detail)``;
#: ``error`` is an exception or an error-class string for non-exception
#: losses (e.g. a page mangled beyond parsing).
CrawlFaultSink = Callable[[str, "BaseException | str", int, str], None]

_NUMBER_PATTERN = re.compile(r"\d[\d,]*")


class PermissionStatus(Enum):
    """Outcome of resolving one invite link."""

    VALID = "valid"
    INVALID_LINK = "invalid_link"
    REMOVED = "removed"
    TIMEOUT = "timeout"

    @property
    def is_valid(self) -> bool:
        return self is PermissionStatus.VALID


@dataclass
class ScrapedBot:
    """One bot's scraped metadata (the unit of all downstream analysis)."""

    listing_id: int
    name: str
    developer_tag: str
    tags: tuple[str, ...]
    description: str
    guild_count: int
    votes: int
    invite_url: str | None
    website_url: str | None
    github_url: str | None
    built_with: str | None
    permission_status: PermissionStatus = PermissionStatus.INVALID_LINK
    permission_names: tuple[str, ...] = ()
    scope_names: tuple[str, ...] = ()

    @property
    def permissions(self) -> Permissions:
        return Permissions.from_names(self.permission_names)

    @property
    def has_valid_permissions(self) -> bool:
        return self.permission_status.is_valid


class ActiveBots:
    """Lazy ``has_valid_permissions`` filter over a spilled bot sequence.

    Iteration re-reads the backing store each pass (streamed runs re-walk
    it once per stage); the count is taken on first ``len()`` and cached —
    the crawl is over by then, so the filtered population is final.
    """

    def __init__(self, bots) -> None:
        self._bots = bots
        self._count: int | None = None

    def __iter__(self):
        for bot in self._bots:
            if bot.has_valid_permissions:
                yield bot

    def __len__(self) -> int:
        if self._count is None:
            self._count = sum(1 for _ in self)
        return self._count


@dataclass
class CrawlResult:
    bots: list[ScrapedBot] = field(default_factory=list)
    pages_traversed: int = 0
    _active: "ActiveBots | None" = field(default=None, init=False, repr=False, compare=False)

    def with_valid_permissions(self) -> "list[ScrapedBot] | ActiveBots":
        """The bots whose invites resolved (the stage 2–4 input).

        A plain list for materialized crawls; a cached lazy view when
        ``bots`` is a disk spill, so a streamed run never materializes the
        active population either.
        """
        if isinstance(self.bots, list):
            return [bot for bot in self.bots if bot.has_valid_permissions]
        if self._active is None:
            self._active = ActiveBots(self.bots)
        return self._active


class TopGGScraper(PoliteScraper):
    """Crawl the listing site end to end."""

    def crawl(
        self,
        max_pages: int | None = None,
        resolve_permissions: bool = True,
        checkpoint_path: str | None = None,
        on_fault: CrawlFaultSink | None = None,
        recorder=None,
        bots: list | None = None,
    ) -> CrawlResult:
        """Traverse the top list; optionally resolve invite permissions.

        With ``checkpoint_path``, progress is persisted after every page and
        an interrupted crawl resumes from the last completed page.

        With ``on_fault``, the crawl degrades instead of crashing: a bot
        whose detail page dies is skipped (reported with ``bots_skipped=1``),
        a dead list page abandons pagination (remaining bots unknown), and
        captcha budget exhaustion aborts the crawl — each reported through
        the callback.  Without it, exceptions propagate as before.

        With a ``recorder`` (a :class:`~repro.core.journal.StageRecorder`),
        every page iteration the loop *advances past* — parsed pages and
        malformed-but-skipped pages alike — commits one write-ahead record,
        and a resumed crawl replays those records instead of re-fetching.
        Iterations that end the crawl (pagination 404, abandonment, captcha
        exhaustion) are never journaled: they re-execute deterministically
        against the replayed world state.
        """
        from repro.core.crashpoints import crashpoint
        from repro.scraper.checkpoint import scraped_bot_from_dict, scraped_bot_to_dict

        checkpoint = None
        result = CrawlResult()
        if bots is not None:
            # Caller-provided accumulator (a disk spill for streamed runs);
            # the crawl only ever appends/extends, so any list-alike works.
            result.bots = bots
        page_number = 1
        known: set[int] = set()
        if checkpoint_path is not None:
            from repro.scraper.checkpoint import CrawlCheckpoint

            checkpoint = CrawlCheckpoint.load_or_empty(checkpoint_path)
            result.bots.extend(checkpoint.bots)
            result.pages_traversed = len(checkpoint.completed_pages)
            page_number = checkpoint.next_page
            known = {bot.listing_id for bot in checkpoint.bots}
        while True:
            if max_pages is not None and page_number > max_pages:
                break
            if recorder is not None:
                replayed, payload = recorder.try_replay(f"page-{page_number}")
                if replayed:
                    page_bots = [scraped_bot_from_dict(entry) for entry in payload["bots"]]
                    result.bots.extend(page_bots)
                    known.update(bot.listing_id for bot in page_bots)
                    result.pages_traversed += payload["traversed"]
                    if checkpoint is not None and checkpoint_path is not None:
                        checkpoint.record_page(page_number, page_bots)
                        checkpoint.save(checkpoint_path)
                    page_number += 1
                    continue
                recorder.begin_unit()
            try:
                listing_ids = self._scrape_list_page(page_number)
            except CaptchaBudgetExhaustedError as error:
                if on_fault is None:
                    raise
                on_fault(TOPGG_HOST, error, 0, f"captcha budget exhausted on list page {page_number}; crawl aborted")
                break
            except (WebDriverException, NetworkError) as error:
                if on_fault is None:
                    raise
                on_fault(TOPGG_HOST, error, 0, f"list page {page_number} unreachable; pagination abandoned")
                break
            if listing_ids is None:
                break
            if not listing_ids:
                # Status-200 page with no parseable bot links: mangled HTML.
                if on_fault is None:
                    break
                on_fault(TOPGG_HOST, "MalformedPage", 0, f"list page {page_number} unparseable; its bots are lost")
                if recorder is not None:
                    # The loop advances past a malformed page, so it must be
                    # journaled (with its fault delta) or resumed keys drift.
                    recorder.commit(f"page-{page_number}", {"bots": [], "traversed": 0})
                    crashpoint("crawl.after_page")
                page_number += 1
                continue
            result.pages_traversed += 1
            page_bots: list[ScrapedBot] = []
            aborted = False
            for listing_id in listing_ids:
                if listing_id in known:
                    # Already recorded (overlapping resume, or a listing
                    # shift re-serving a bot on a later page).
                    continue
                try:
                    bot = self.scrape_bot(listing_id)
                    if bot is None:
                        if on_fault is not None:
                            on_fault(TOPGG_HOST, "MalformedPage", 1, f"bot {listing_id} page unusable")
                        continue
                    if resolve_permissions:
                        self.resolve_permissions(bot)
                except CaptchaBudgetExhaustedError as error:
                    if on_fault is None:
                        raise
                    on_fault(TOPGG_HOST, error, 1, f"captcha budget exhausted at bot {listing_id}; crawl aborted")
                    aborted = True
                    break
                except (WebDriverException, NetworkError) as error:
                    if on_fault is None:
                        raise
                    on_fault(TOPGG_HOST, error, 1, f"bot {listing_id} skipped")
                    continue
                page_bots.append(bot)
                known.add(bot.listing_id)
            result.bots.extend(page_bots)
            if checkpoint is not None and checkpoint_path is not None:
                checkpoint.record_page(page_number, page_bots)
                checkpoint.save(checkpoint_path)
            if aborted:
                # Terminal iteration: not journaled; a resume re-executes it
                # against the replayed world and aborts identically.
                break
            if recorder is not None:
                recorder.commit(
                    f"page-{page_number}",
                    {"bots": [scraped_bot_to_dict(bot) for bot in page_bots], "traversed": 1},
                )
                crashpoint("crawl.after_page")
            page_number += 1
        return result

    # -- list pages -------------------------------------------------------------

    def _scrape_list_page(self, page_number: int) -> list[int] | None:
        """Return listing ids on one page.

        ``None`` means pagination genuinely ended (404); an empty list means
        the page loaded but had no parseable bot links (mangled HTML) —
        callers decide whether that ends the crawl or just loses the page.
        """
        response = self.fetch(f"{TOPGG_BASE}/list/top?page={page_number}")
        if response.status == 404:
            return None
        ids: list[int] = []
        # Variant A: <a class="bot-link" href="/bot/{id}">
        for element in self.browser.find_elements(By.CSS_SELECTOR, "a.bot-link"):
            href = element.get_attribute("href") or ""
            match = re.search(r"/bot/(\d+)", href)
            if match:
                ids.append(int(match.group(1)))
        # Variant B: <a data-bot-id="{id}">
        for element in self.browser.find_elements(By.CSS_SELECTOR, "a[data-bot-id]"):
            value = element.get_attribute("data-bot-id")
            if value and value.isdigit():
                ids.append(int(value))
        if not ids:
            self.stats.element_misses += 1
            return []
        return ids

    # -- detail pages --------------------------------------------------------------

    def scrape_bot(self, listing_id: int) -> ScrapedBot | None:
        """Extract one bot's metadata from its detail page."""
        response = self.fetch(f"{TOPGG_BASE}/bot/{listing_id}")
        if response.status != 200:
            return None
        browser = self.browser
        try:
            name = browser.find_element(By.CSS_SELECTOR, "h1.bot-title").text
        except NoSuchElementException:
            self.stats.element_misses += 1
            return None
        developer = try_locators(browser, [(By.CSS_SELECTOR, "span.dev-tag")])
        description = try_locators(browser, [(By.CSS_SELECTOR, "p.description")])
        guilds = try_locators(
            browser,
            [(By.ID, "guild-count"), (By.CSS_SELECTOR, "span.stat-guilds")],
        )
        votes = try_locators(
            browser,
            [(By.ID, "votes"), (By.CSS_SELECTOR, "span.stat-votes")],
        )
        invite = try_locators(
            browser,
            [(By.ID, "invite-button"), (By.CSS_SELECTOR, "a.invite-link")],
        )
        website = try_locators(browser, [(By.ID, "website-link"), (By.CSS_SELECTOR, "a[rel=website]")])
        github = try_locators(browser, [(By.ID, "github-link"), (By.CSS_SELECTOR, "a[rel=github]")])
        built_with = try_locators(browser, [(By.CSS_SELECTOR, "p.built-with")])
        tags = tuple(element.text for element in browser.find_elements(By.CSS_SELECTOR, "span.tag"))
        return ScrapedBot(
            listing_id=listing_id,
            name=name,
            developer_tag=developer.text if developer else "",
            tags=tags,
            description=description.text if description else "",
            guild_count=_parse_number(guilds.text if guilds else ""),
            votes=_parse_number(votes.text if votes else ""),
            invite_url=invite.get_attribute("href") if invite else None,
            website_url=website.get_attribute("href") if website else None,
            github_url=github.get_attribute("href") if github else None,
            built_with=_parse_built_with(built_with.text if built_with else ""),
        )

    # -- invite resolution ------------------------------------------------------------

    def resolve_permissions(self, bot: ScrapedBot) -> PermissionStatus:
        """Follow the invite link and read permissions off the consent page."""
        if not bot.invite_url:
            bot.permission_status = PermissionStatus.INVALID_LINK
            return bot.permission_status
        try:
            response = self.fetch(bot.invite_url)
        except TimeoutException:
            bot.permission_status = PermissionStatus.TIMEOUT
            return bot.permission_status
        if response.status == 404:
            bot.permission_status = PermissionStatus.REMOVED
            return bot.permission_status
        if response.status != 200:
            bot.permission_status = PermissionStatus.INVALID_LINK
            return bot.permission_status
        items = self.browser.find_elements(By.CSS_SELECTOR, "ul#permission-list li.permission-item")
        names = []
        for item in items:
            text = item.text
            try:
                permission_from_name(text)
            except KeyError:
                # A token cut mid-word (truncated body) would poison every
                # later Permissions.from_names() — drop it at the boundary.
                self.stats.element_misses += 1
                continue
            names.append(text)
        bot.permission_names = tuple(names)
        bot.scope_names = self._parse_scopes()
        bot.permission_status = PermissionStatus.VALID
        return bot.permission_status

    def _parse_scopes(self) -> tuple[str, ...]:
        """Read the OAuth scopes off the consent page ("Scopes: bot, ...")."""
        element = try_locators(self.browser, [(By.CSS_SELECTOR, "p.scopes")])
        if element is None:
            return ()
        text = element.text
        _, _, listing = text.partition(":")
        return tuple(scope.strip() for scope in listing.split(",") if scope.strip())


def _parse_number(text: str) -> int:
    match = _NUMBER_PATTERN.search(text)
    return int(match.group(0).replace(",", "")) if match else 0


def _parse_built_with(text: str) -> str | None:
    prefix = "Built with "
    if text.startswith(prefix):
        return text[len(prefix):]
    return text or None
