"""Crawl checkpointing: survive crashes mid-measurement.

A full listing crawl covers >800 pages and tens of thousands of detail
fetches; real campaigns get interrupted (bans, machine restarts, captcha
budget exhaustion).  The checkpoint records completed pages and their
scraped bots after every page, so a re-run resumes instead of re-crawling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.scraper.topgg import PermissionStatus, ScrapedBot

CHECKPOINT_VERSION = 1


def scraped_bot_to_dict(bot: ScrapedBot) -> dict:
    return {
        "listing_id": bot.listing_id,
        "name": bot.name,
        "developer_tag": bot.developer_tag,
        "tags": list(bot.tags),
        "description": bot.description,
        "guild_count": bot.guild_count,
        "votes": bot.votes,
        "invite_url": bot.invite_url,
        "website_url": bot.website_url,
        "github_url": bot.github_url,
        "built_with": bot.built_with,
        "permission_status": bot.permission_status.value,
        "permission_names": list(bot.permission_names),
        "scope_names": list(bot.scope_names),
    }


def scraped_bot_from_dict(payload: dict) -> ScrapedBot:
    return ScrapedBot(
        listing_id=payload["listing_id"],
        name=payload["name"],
        developer_tag=payload["developer_tag"],
        tags=tuple(payload["tags"]),
        description=payload["description"],
        guild_count=payload["guild_count"],
        votes=payload["votes"],
        invite_url=payload["invite_url"],
        website_url=payload["website_url"],
        github_url=payload["github_url"],
        built_with=payload["built_with"],
        permission_status=PermissionStatus(payload["permission_status"]),
        permission_names=tuple(payload["permission_names"]),
        scope_names=tuple(payload.get("scope_names", ())),
    )


@dataclass
class CrawlCheckpoint:
    """Persistent crawl progress."""

    completed_pages: list[int] = field(default_factory=list)
    bots: list[ScrapedBot] = field(default_factory=list)

    def record_page(self, page_number: int, bots: list[ScrapedBot]) -> None:
        """Record one completed page, idempotently.

        Overlapping resumes can re-crawl a page already in the checkpoint
        (a crash between ``record_page`` and the next page's fetch), and a
        listing that shifted between sessions can re-serve a bot on a later
        page; neither may duplicate entries, so bots are always deduplicated
        by listing id.
        """
        recorded = {bot.listing_id for bot in self.bots}
        self.bots.extend(bot for bot in bots if bot.listing_id not in recorded)
        if page_number not in self.completed_pages:
            self.completed_pages.append(page_number)

    @property
    def next_page(self) -> int:
        return max(self.completed_pages, default=0) + 1

    def save(self, path: str | Path) -> Path:
        target = Path(path)
        payload = {
            "version": CHECKPOINT_VERSION,
            "completed_pages": self.completed_pages,
            "bots": [scraped_bot_to_dict(bot) for bot in self.bots],
        }
        # Write-then-rename so a crash mid-save never corrupts progress.
        temporary = target.with_suffix(target.suffix + ".tmp")
        temporary.write_text(json.dumps(payload))
        temporary.replace(target)
        return target

    @classmethod
    def load(cls, path: str | Path) -> "CrawlCheckpoint":
        payload = json.loads(Path(path).read_text())
        if payload.get("version") != CHECKPOINT_VERSION:
            raise ValueError(f"unsupported checkpoint version: {payload.get('version')!r}")
        return cls(
            completed_pages=list(payload["completed_pages"]),
            bots=[scraped_bot_from_dict(entry) for entry in payload["bots"]],
        )

    @classmethod
    def load_or_empty(cls, path: str | Path) -> "CrawlCheckpoint":
        target = Path(path)
        if target.exists():
            return cls.load(target)
        return cls()
