"""Crawl checkpointing: survive crashes mid-measurement.

A full listing crawl covers >800 pages and tens of thousands of detail
fetches; real campaigns get interrupted (bans, machine restarts, captcha
budget exhaustion).  The checkpoint records completed pages and their
scraped bots after every page, so a re-run resumes instead of re-crawling.

Integrity matches the pipeline checkpoint: saves embed a sha256 checksum
and are fsynced before the atomic rename; :meth:`CrawlCheckpoint.load`
raises :class:`CheckpointCorruptionError` on damage, and
:meth:`CrawlCheckpoint.load_or_empty` sidelines a damaged file to
``<name>.corrupt`` and restarts the crawl rather than crashing.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.scraper.topgg import PermissionStatus, ScrapedBot

logger = logging.getLogger(__name__)

CHECKPOINT_VERSION = 1


class CheckpointCorruptionError(ValueError):
    """The crawl checkpoint on disk does not match what was written."""


def _payload_checksum(payload: dict) -> str:
    scrubbed = {key: value for key, value in payload.items() if key != "checksum"}
    blob = json.dumps(scrubbed, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def scraped_bot_to_dict(bot: ScrapedBot) -> dict:
    return {
        "listing_id": bot.listing_id,
        "name": bot.name,
        "developer_tag": bot.developer_tag,
        "tags": list(bot.tags),
        "description": bot.description,
        "guild_count": bot.guild_count,
        "votes": bot.votes,
        "invite_url": bot.invite_url,
        "website_url": bot.website_url,
        "github_url": bot.github_url,
        "built_with": bot.built_with,
        "permission_status": bot.permission_status.value,
        "permission_names": list(bot.permission_names),
        "scope_names": list(bot.scope_names),
    }


def scraped_bot_from_dict(payload: dict) -> ScrapedBot:
    return ScrapedBot(
        listing_id=payload["listing_id"],
        name=payload["name"],
        developer_tag=payload["developer_tag"],
        tags=tuple(payload["tags"]),
        description=payload["description"],
        guild_count=payload["guild_count"],
        votes=payload["votes"],
        invite_url=payload["invite_url"],
        website_url=payload["website_url"],
        github_url=payload["github_url"],
        built_with=payload["built_with"],
        permission_status=PermissionStatus(payload["permission_status"]),
        permission_names=tuple(payload["permission_names"]),
        scope_names=tuple(payload.get("scope_names", ())),
    )


@dataclass
class CrawlCheckpoint:
    """Persistent crawl progress."""

    completed_pages: list[int] = field(default_factory=list)
    bots: list[ScrapedBot] = field(default_factory=list)

    def record_page(self, page_number: int, bots: list[ScrapedBot]) -> None:
        """Record one completed page, idempotently.

        Overlapping resumes can re-crawl a page already in the checkpoint
        (a crash between ``record_page`` and the next page's fetch), and a
        listing that shifted between sessions can re-serve a bot on a later
        page; neither may duplicate entries, so bots are always deduplicated
        by listing id.
        """
        recorded = {bot.listing_id for bot in self.bots}
        self.bots.extend(bot for bot in bots if bot.listing_id not in recorded)
        if page_number not in self.completed_pages:
            self.completed_pages.append(page_number)

    @property
    def next_page(self) -> int:
        return max(self.completed_pages, default=0) + 1

    def save(self, path: str | Path) -> Path:
        target = Path(path)
        payload = {
            "version": CHECKPOINT_VERSION,
            "checksum": "",
            "completed_pages": self.completed_pages,
            "bots": [scraped_bot_to_dict(bot) for bot in self.bots],
        }
        payload["checksum"] = _payload_checksum(payload)
        # Write-then-fsync-then-rename so a crash mid-save never corrupts
        # progress: the rename only happens once the bytes are on disk.
        temporary = target.with_suffix(target.suffix + ".tmp")
        with open(temporary, "w", encoding="utf-8") as stream:
            stream.write(json.dumps(payload))
            stream.flush()
            os.fsync(stream.fileno())
        temporary.replace(target)
        return target

    @classmethod
    def load(cls, path: str | Path) -> "CrawlCheckpoint":
        try:
            payload = json.loads(Path(path).read_text())
        except json.JSONDecodeError as error:
            raise CheckpointCorruptionError(f"crawl checkpoint is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise CheckpointCorruptionError("crawl checkpoint payload is not a JSON object")
        if payload.get("version") != CHECKPOINT_VERSION:
            raise ValueError(f"unsupported checkpoint version: {payload.get('version')!r}")
        stored = payload.get("checksum")
        if stored and stored != _payload_checksum(payload):
            raise CheckpointCorruptionError("crawl checkpoint checksum mismatch: file corrupted on disk")
        try:
            return cls(
                completed_pages=list(payload["completed_pages"]),
                bots=[scraped_bot_from_dict(entry) for entry in payload["bots"]],
            )
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointCorruptionError(f"crawl checkpoint fields are damaged: {error}") from error

    @classmethod
    def load_or_empty(cls, path: str | Path) -> "CrawlCheckpoint":
        """Load a crawl checkpoint; sideline a damaged file instead of crashing."""
        target = Path(path)
        # Clear any stale ``.tmp`` sidecar a crash mid-save left behind.
        stale = target.with_suffix(target.suffix + ".tmp")
        if stale.exists():
            try:
                stale.unlink()
            except OSError:
                logger.warning("could not remove stale checkpoint sidecar %s", stale)
        if not target.exists():
            return cls()
        try:
            return cls.load(target)
        except ValueError as error:
            sidecar = target.with_name(target.name + ".corrupt")
            try:
                target.replace(sidecar)
            except OSError:
                logger.warning("could not sideline corrupt crawl checkpoint %s", target)
            logger.warning("corrupt crawl checkpoint %s sidelined to %s (%s)", target, sidecar, error)
            return cls()
