"""Crawl checkpointing: survive crashes mid-measurement.

A full listing crawl covers >800 pages and tens of thousands of detail
fetches; real campaigns get interrupted (bans, machine restarts, captcha
budget exhaustion).  The checkpoint records completed pages and their
scraped bots after every page, so a re-run resumes instead of re-crawling.

Progress is stored in *cursor form*: the checkpoint document itself holds
only the completed-page cursor and a recorded-bot count, while the bots
live in an append-only JSONL sidecar (``<path>.bots``) that each save
extends with just the pages recorded since the last save.  The old form
re-embedded the full listing set in every snapshot, making each page's
save O(bots so far) — a full crawl rewrote the whole population hundreds
of times over.

Integrity matches the pipeline checkpoint: the meta document embeds a
sha256 checksum and is fsynced before the atomic rename, and the sidecar
is appended and fsynced *before* the meta that counts it — the count is
authoritative, so a crash between the two leaves a torn sidecar tail that
the next load simply truncates.  :meth:`CrawlCheckpoint.load` raises
:class:`CheckpointCorruptionError` on damage, and
:meth:`CrawlCheckpoint.load_or_empty` sidelines a damaged pair to
``<name>.corrupt`` and restarts the crawl rather than crashing.
"""

from __future__ import annotations

import hashlib
import json
import logging
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.storage import (
    ArtifactCorruptionError,
    DurableAppendFile,
    atomic_write_json,
    discard_stale_tmp,
)
from repro.scraper.topgg import PermissionStatus, ScrapedBot

logger = logging.getLogger(__name__)

CHECKPOINT_VERSION = 2


def sidecar_path(path: str | Path) -> Path:
    """Path of the append-only bot log that rides next to a checkpoint."""
    target = Path(path)
    return target.with_name(target.name + ".bots")


class CheckpointCorruptionError(ArtifactCorruptionError):
    """The crawl checkpoint on disk does not match what was written.

    Also a :class:`~repro.core.storage.StorageError` (and still a
    ``ValueError``), matching the pipeline checkpoint's error typing.
    """


def _payload_checksum(payload: dict) -> str:
    scrubbed = {key: value for key, value in payload.items() if key != "checksum"}
    blob = json.dumps(scrubbed, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def scraped_bot_to_dict(bot: ScrapedBot) -> dict:
    return {
        "listing_id": bot.listing_id,
        "name": bot.name,
        "developer_tag": bot.developer_tag,
        "tags": list(bot.tags),
        "description": bot.description,
        "guild_count": bot.guild_count,
        "votes": bot.votes,
        "invite_url": bot.invite_url,
        "website_url": bot.website_url,
        "github_url": bot.github_url,
        "built_with": bot.built_with,
        "permission_status": bot.permission_status.value,
        "permission_names": list(bot.permission_names),
        "scope_names": list(bot.scope_names),
    }


def scraped_bot_from_dict(payload: dict) -> ScrapedBot:
    return ScrapedBot(
        listing_id=payload["listing_id"],
        name=payload["name"],
        developer_tag=payload["developer_tag"],
        tags=tuple(payload["tags"]),
        description=payload["description"],
        guild_count=payload["guild_count"],
        votes=payload["votes"],
        invite_url=payload["invite_url"],
        website_url=payload["website_url"],
        github_url=payload["github_url"],
        built_with=payload["built_with"],
        permission_status=PermissionStatus(payload["permission_status"]),
        permission_names=tuple(payload["permission_names"]),
        scope_names=tuple(payload.get("scope_names", ())),
    )


@dataclass
class CrawlCheckpoint:
    """Persistent crawl progress."""

    completed_pages: list[int] = field(default_factory=list)
    bots: list[ScrapedBot] = field(default_factory=list)
    #: How many of ``bots`` are already on disk in the sidecar; ``save``
    #: appends only the tail past this cursor.
    _persisted: int = field(default=0, init=False, repr=False, compare=False)

    def record_page(self, page_number: int, bots: list[ScrapedBot]) -> None:
        """Record one completed page, idempotently.

        Overlapping resumes can re-crawl a page already in the checkpoint
        (a crash between ``record_page`` and the next page's fetch), and a
        listing that shifted between sessions can re-serve a bot on a later
        page; neither may duplicate entries, so bots are always deduplicated
        by listing id.
        """
        recorded = {bot.listing_id for bot in self.bots}
        self.bots.extend(bot for bot in bots if bot.listing_id not in recorded)
        if page_number not in self.completed_pages:
            self.completed_pages.append(page_number)

    @property
    def next_page(self) -> int:
        return max(self.completed_pages, default=0) + 1

    def save(self, path: str | Path) -> Path:
        target = Path(path)
        sidecar = sidecar_path(target)
        # Sidecar first: append only the bots recorded since the last save
        # and fsync them before the meta that counts them.  The meta count
        # is authoritative, so a crash after the append but before the
        # rename just leaves extra sidecar lines the next load truncates.
        fresh = self.bots[self._persisted :]
        if self._persisted == 0 or fresh:
            log = DurableAppendFile(sidecar, label="crawl.bots", fsync_every=0)
            try:
                if self._persisted == 0:
                    log.truncate_to(0)  # a fresh crawl starts a fresh log
                for bot in fresh:
                    line = json.dumps(scraped_bot_to_dict(bot), sort_keys=True, separators=(",", ":"))
                    log.write((line + "\n").encode("utf-8"))
                    log.commit()
                log.sync()
            finally:
                log.close()
        self._persisted = len(self.bots)
        payload = {
            "version": CHECKPOINT_VERSION,
            "checksum": "",
            "completed_pages": self.completed_pages,
            "bots_recorded": len(self.bots),
        }
        payload["checksum"] = _payload_checksum(payload)
        # Write-then-fsync-then-rename (via the unified storage layer) so a
        # crash mid-save never corrupts progress: the rename only happens
        # once the bytes are on disk.
        return atomic_write_json(target, payload, label="crawl.meta")

    @classmethod
    def _load_sidecar(cls, path: Path, count: int) -> list[ScrapedBot]:
        """Read the first ``count`` bots back from the sidecar log.

        Lines beyond ``count`` are a torn tail from a crash between the
        sidecar append and the meta rename; they are truncated away so the
        next append extends a clean prefix.  Fewer than ``count`` parseable
        lines means the log lost acknowledged data — corruption.
        """
        sidecar = sidecar_path(path)
        bots: list[ScrapedBot] = []
        valid_bytes = 0
        if count:
            try:
                with open(sidecar, "rb") as stream:
                    for line in stream:
                        if len(bots) == count:
                            break
                        bots.append(scraped_bot_from_dict(json.loads(line.decode("utf-8"))))
                        valid_bytes += len(line)
            except FileNotFoundError as error:
                raise CheckpointCorruptionError(f"crawl checkpoint bot log missing: {sidecar}") from error
            except (json.JSONDecodeError, UnicodeDecodeError) as error:
                raise CheckpointCorruptionError(f"crawl checkpoint bot log is damaged: {error}") from error
        if len(bots) != count:
            raise CheckpointCorruptionError(
                f"crawl checkpoint bot log holds {len(bots)} bots, meta recorded {count}"
            )
        try:
            if sidecar.exists() and sidecar.stat().st_size > valid_bytes:
                with open(sidecar, "r+b") as stream:
                    stream.truncate(valid_bytes)
        except OSError:
            logger.warning("could not truncate torn tail of crawl bot log %s", sidecar)
        return bots

    @classmethod
    def load(cls, path: str | Path) -> "CrawlCheckpoint":
        target = Path(path)
        try:
            payload = json.loads(target.read_text())
        except json.JSONDecodeError as error:
            raise CheckpointCorruptionError(f"crawl checkpoint is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise CheckpointCorruptionError("crawl checkpoint payload is not a JSON object")
        version = payload.get("version")
        if version not in (1, CHECKPOINT_VERSION):
            raise ValueError(f"unsupported checkpoint version: {version!r}")
        stored = payload.get("checksum")
        if stored and stored != _payload_checksum(payload):
            raise CheckpointCorruptionError("crawl checkpoint checksum mismatch: file corrupted on disk")
        try:
            if version == 1:
                # Legacy embedded form: bots live inside the meta document.
                # ``_persisted`` stays 0 so the first save migrates the full
                # set into a fresh sidecar.
                return cls(
                    completed_pages=list(payload["completed_pages"]),
                    bots=[scraped_bot_from_dict(entry) for entry in payload["bots"]],
                )
            count = int(payload["bots_recorded"])
            checkpoint = cls(
                completed_pages=list(payload["completed_pages"]),
                bots=cls._load_sidecar(target, count),
            )
            checkpoint._persisted = count
            return checkpoint
        except CheckpointCorruptionError:
            raise
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointCorruptionError(f"crawl checkpoint fields are damaged: {error}") from error

    @classmethod
    def load_or_empty(cls, path: str | Path) -> "CrawlCheckpoint":
        """Load a crawl checkpoint; sideline a damaged file instead of crashing."""
        target = Path(path)
        # Clear any stale write sidecar a crash mid-save left behind.
        discard_stale_tmp(target)
        if not target.exists():
            return cls()
        try:
            return cls.load(target)
        except ValueError as error:
            corrupt = target.with_name(target.name + ".corrupt")
            try:
                target.replace(corrupt)
            except OSError:
                logger.warning("could not sideline corrupt crawl checkpoint %s", target)
            bot_log = sidecar_path(target)
            if bot_log.exists():
                try:
                    bot_log.replace(corrupt.with_name(corrupt.name + ".bots"))
                except OSError:
                    logger.warning("could not sideline crawl bot log %s", bot_log)
            logger.warning("corrupt crawl checkpoint %s sidelined to %s (%s)", target, corrupt, error)
            return cls()
