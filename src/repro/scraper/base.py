"""Polite scraping base: pacing, retries, rate limits and captcha walls.

Implements the methodology items verbatim: (i) limit the request rate,
(ii) defeat captchas with 2Captcha, (iii) mimic human behaviour (jittered
think time), (iv) handle and react to exceptions such as
``NoSuchElementException`` and ``TimeoutException``.

Resilience wiring (all optional, used by the pipeline): a shared per-host
:class:`~repro.core.resilience.CircuitBreakerRegistry` so a dead host fails
fast across every scraper, one :class:`~repro.core.resilience.RetryPolicy`
for transient backoff, a per-stage :class:`~repro.core.resilience.RetryBudget`,
and a ``fault_sink`` callback reporting transport failures for the
pipeline's fault ledger.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.web.browser import (
    Browser,
    By,
    NoSuchElementException,
    TimeoutException,
    WebDriverException,
    WebElement,
)
from repro.web.captcha import CaptchaError, InsufficientBalanceError, TwoCaptchaClient
from repro.web.http import Response
from repro.web.network import VirtualInternet

if TYPE_CHECKING:  # pragma: no cover - type-only; avoids a core<->scraper cycle
    from repro.core.resilience import CircuitBreakerRegistry, RetryBudget, RetryPolicy

#: ``fault_sink(host, error)`` — invoked for transport-level failures.
FaultSink = Callable[[str, BaseException], None]


class RobotsDisallowedError(WebDriverException):
    """The target path is disallowed by the host's robots.txt."""


class CaptchaBudgetExhaustedError(WebDriverException):
    """The captcha-solving account ran out of funds mid-crawl."""


@dataclass
class ScrapeStats:
    """Counters for auditing a crawl."""

    pages_fetched: int = 0
    rate_limited: int = 0
    captchas_seen: int = 0
    captchas_solved: int = 0
    transient_retries: int = 0
    timeouts: int = 0
    element_misses: int = 0
    malformed_retry_after: int = 0
    circuit_short_circuits: int = 0
    retries_denied: int = 0
    faults_absorbed: int = 0


@dataclass
class ScraperConfig:
    """Pacing and retry policy."""

    min_think_time: float = 0.4
    max_think_time: float = 1.6
    page_load_timeout: float = 10.0
    max_captcha_attempts: int = 3
    max_transient_retries: int = 3
    retry_backoff: float = 2.0
    seed: int = 99
    #: Fetch each host's robots.txt once and honour Crawl-delay/Disallow.
    respect_robots: bool = True


class PoliteScraper:
    """Shared machinery for all site-specific scrapers."""

    def __init__(
        self,
        internet: VirtualInternet,
        solver: TwoCaptchaClient | None = None,
        config: ScraperConfig | None = None,
        client_id: str = "measurement-scraper",
        breakers: "CircuitBreakerRegistry | None" = None,
        retry_policy: "RetryPolicy | None" = None,
        retry_budget: "RetryBudget | None" = None,
        fault_sink: FaultSink | None = None,
    ) -> None:
        self.internet = internet
        self.config = config or ScraperConfig()
        self.browser = Browser(internet, client_id=client_id, page_load_timeout=self.config.page_load_timeout)
        self.solver = solver
        self.stats = ScrapeStats()
        self.breakers = breakers
        self.retry_budget = retry_budget
        self.fault_sink = fault_sink
        if retry_policy is None:
            from repro.core.resilience import RetryPolicy

            retry_policy = RetryPolicy(
                max_attempts=self.config.max_transient_retries,
                base_delay=self.config.retry_backoff,
                multiplier=2.0,
                jitter=0.2,
            )
        self.retry_policy = retry_policy
        self._rng = random.Random(self.config.seed)
        from repro.scraper.robots import RobotsCache

        self._robots = RobotsCache()

    # -- resume support --------------------------------------------------------

    def state_dict(self) -> dict:
        """Order-coupled scraper state (think-time RNG, stats, robots,
        cookies) for journal capture.  The solver and breakers are shared
        objects captured separately by the tracker."""
        from repro.web.network import rng_state

        return {
            "rng": rng_state(self._rng),
            "stats": vars(self.stats).copy(),
            "robots": self._robots.state_dict(),
            "cookies": self.browser.client.cookies.state_dict(),
            "requests_sent": self.browser.client.requests_sent,
            "generation": self.browser._generation,
        }

    def restore_state(self, state: dict) -> None:
        from repro.web.network import restore_rng

        restore_rng(self._rng, state["rng"])
        for name, value in state["stats"].items():
            setattr(self.stats, name, value)  # in place: CrawlResult may hold a reference
        self._robots.restore_state(state["robots"])
        self.browser.client.cookies.restore_state(state["cookies"])
        self.browser.client.requests_sent = state["requests_sent"]
        self.browser._generation = state["generation"]

    # -- fetching --------------------------------------------------------------

    def fetch(self, url: str) -> Response:
        """Politely fetch ``url``, absorbing rate limits, captchas and 5xx.

        Raises :class:`TimeoutException` for slow pages (callers classify
        those), :class:`RobotsDisallowedError` for paths the host's
        robots.txt forbids, :class:`~repro.core.resilience.CircuitOpenError`
        when the host's shared circuit is open, and
        :class:`WebDriverException` for unrecoverable failures.
        """
        from repro.web.http import Url

        parsed = Url.parse(url)
        host = parsed.host
        if self.breakers is not None and parsed.is_absolute:
            self._await_circuit(host)
        extra_delay = 0.0
        if self.config.respect_robots and parsed.is_absolute:
            policy = self._robots.policy_for(self.browser.client, host)
            if not policy.allows(parsed.path):
                raise RobotsDisallowedError(f"robots.txt disallows {parsed.path} on {host}")
            extra_delay = policy.crawl_delay
        self._think(extra_delay)
        response = self._navigate(url, host)
        transient_attempt = 0
        for _ in range(self.config.max_transient_retries + self.config.max_captcha_attempts):
            if response.status == 429:
                self.stats.rate_limited += 1
                retry_after = self._retry_after_seconds(response)
                if not self._spend_retry():
                    break
                self.internet.clock.sleep(retry_after + 0.1)
                response = self._navigate(url, host)
            elif response.status == 403 and self._looks_like_captcha():
                if not self._spend_retry():
                    break
                response = self._clear_captcha(url)
            elif response.status in (502, 503, 504):
                self.stats.transient_retries += 1
                if not self._spend_retry():
                    break
                self.internet.clock.sleep(self.retry_policy.delay(transient_attempt, self._rng))
                transient_attempt += 1
                response = self._navigate(url, host)
            else:
                break
        self.stats.pages_fetched += 1
        return response

    def _await_circuit(self, host: str) -> None:
        """Wait out an open circuit on the virtual clock, budget permitting.

        A polite scraper pauses while a host is down rather than burning
        through its work list; skipping instantly would consume the whole
        crawl in near-zero virtual time while the outage window is still
        open.  Once the retry budget is gone (or the host stays dead), the
        :class:`~repro.core.resilience.CircuitOpenError` propagates so the
        caller can skip and account the bot.
        """
        from repro.core.resilience import CircuitOpenError

        for _ in range(3):
            try:
                self.breakers.check(host)
                return
            except CircuitOpenError as error:
                if not self._spend_retry():
                    self.stats.circuit_short_circuits += 1
                    raise
                wait = max(error.retry_at - self.internet.clock.now(), 0.0) + self.retry_policy.base_delay
                self.internet.clock.sleep(wait)
        try:
            self.breakers.check(host)
        except CircuitOpenError:
            self.stats.circuit_short_circuits += 1
            raise

    def _retry_after_seconds(self, response: Response) -> float:
        """Parse ``Retry-After``, falling back on garbage or absent values.

        Real hosts send junk here; ``float("a while")`` must degrade to the
        configured backoff, not kill the crawl with a ``ValueError``.
        """
        raw = response.headers.get("Retry-After")
        if raw is None or not raw.strip():
            return self.config.retry_backoff
        try:
            value = float(raw)
        except ValueError:
            value = math.nan
        if not math.isfinite(value) or value < 0:
            self.stats.malformed_retry_after += 1
            return self.config.retry_backoff
        return value

    def _spend_retry(self) -> bool:
        """Consume stage retry budget; False means stop retrying this fetch."""
        if self.retry_budget is None:
            return True
        if self.retry_budget.spend():
            return True
        self.stats.retries_denied += 1
        return False

    def _navigate(self, url: str, host: str | None = None) -> Response:
        if host is None:
            from repro.web.http import Url

            host = Url.parse(url).host
        try:
            response = self.browser.get(url)
        except TimeoutException:
            # Slow, not dead: timeouts are a *classification* outcome (the
            # paper's slow-redirect invites), so they never trip breakers.
            self.stats.timeouts += 1
            raise
        except WebDriverException as error:
            self._note_transport_failure(host, error)
            raise
        if self.breakers is not None and host:
            self.breakers.record_success(host)
        return response

    def _note_transport_failure(self, host: str, error: BaseException) -> None:
        self.stats.faults_absorbed += 1
        if self.breakers is not None and host:
            self.breakers.record_failure(host)
        if self.fault_sink is not None:
            self.fault_sink(host or "<unknown>", error)

    def _think(self, minimum: float = 0.0) -> None:
        """Human-like pause between page loads (at least ``minimum``)."""
        delay = self._rng.uniform(self.config.min_think_time, self.config.max_think_time)
        self.internet.clock.sleep(max(delay, minimum))

    # -- captcha handling ---------------------------------------------------------

    def _looks_like_captcha(self) -> bool:
        try:
            self.browser.find_element(By.ID, "captcha-challenge")
            return True
        except NoSuchElementException:
            return False

    def _clear_captcha(self, url: str) -> Response:
        """Extract the challenge, solve it with 2Captcha, retry the URL."""
        self.stats.captchas_seen += 1
        if self.solver is None:
            raise WebDriverException("hit a captcha wall with no solver configured")
        element = self.browser.find_element(By.ID, "captcha-challenge")
        challenge_id = element.get_attribute("data-challenge-id") or ""
        prompt = element.find_element(By.CSS_SELECTOR, "p.prompt").text
        try:
            answer = self.solver.solve_with_retries(prompt, attempts=self.config.max_captcha_attempts)
        except InsufficientBalanceError as error:
            raise CaptchaBudgetExhaustedError(f"captcha budget exhausted: {error}") from error
        except CaptchaError as error:
            raise WebDriverException(f"captcha solving failed: {error}") from error
        self.stats.captchas_solved += 1
        from repro.web.http import Url

        retry_url = Url.parse(url).with_params(captcha_id=challenge_id, captcha_answer=answer)
        return self._navigate(str(retry_url))


def try_locators(browser_or_element, locators: list[tuple[str, str]]) -> WebElement | None:
    """Return the first element matched by any locator, else ``None``.

    This is how the scraper copes with the varying page structures: try the
    variant-A locator, fall back to variant B, treat total absence as "the
    attribute is not on this page".
    """
    for by, value in locators:
        try:
            return browser_or_element.find_element(by, value)
        except NoSuchElementException:
            continue
    return None
