"""Polite scraping base: pacing, retries, rate limits and captcha walls.

Implements the methodology items verbatim: (i) limit the request rate,
(ii) defeat captchas with 2Captcha, (iii) mimic human behaviour (jittered
think time), (iv) handle and react to exceptions such as
``NoSuchElementException`` and ``TimeoutException``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.web.browser import (
    Browser,
    By,
    NoSuchElementException,
    TimeoutException,
    WebDriverException,
    WebElement,
)
from repro.web.captcha import CaptchaError, TwoCaptchaClient
from repro.web.http import Response
from repro.web.network import VirtualInternet


class RobotsDisallowedError(WebDriverException):
    """The target path is disallowed by the host's robots.txt."""


@dataclass
class ScrapeStats:
    """Counters for auditing a crawl."""

    pages_fetched: int = 0
    rate_limited: int = 0
    captchas_seen: int = 0
    captchas_solved: int = 0
    transient_retries: int = 0
    timeouts: int = 0
    element_misses: int = 0


@dataclass
class ScraperConfig:
    """Pacing and retry policy."""

    min_think_time: float = 0.4
    max_think_time: float = 1.6
    page_load_timeout: float = 10.0
    max_captcha_attempts: int = 3
    max_transient_retries: int = 3
    retry_backoff: float = 2.0
    seed: int = 99
    #: Fetch each host's robots.txt once and honour Crawl-delay/Disallow.
    respect_robots: bool = True


class PoliteScraper:
    """Shared machinery for all site-specific scrapers."""

    def __init__(
        self,
        internet: VirtualInternet,
        solver: TwoCaptchaClient | None = None,
        config: ScraperConfig | None = None,
        client_id: str = "measurement-scraper",
    ) -> None:
        self.internet = internet
        self.config = config or ScraperConfig()
        self.browser = Browser(internet, client_id=client_id, page_load_timeout=self.config.page_load_timeout)
        self.solver = solver
        self.stats = ScrapeStats()
        self._rng = random.Random(self.config.seed)
        from repro.scraper.robots import RobotsCache

        self._robots = RobotsCache()

    # -- fetching --------------------------------------------------------------

    def fetch(self, url: str) -> Response:
        """Politely fetch ``url``, absorbing rate limits, captchas and 5xx.

        Raises :class:`TimeoutException` for slow pages (callers classify
        those), :class:`RobotsDisallowedError` for paths the host's
        robots.txt forbids, and :class:`WebDriverException` for
        unrecoverable failures.
        """
        from repro.web.http import Url

        parsed = Url.parse(url)
        extra_delay = 0.0
        if self.config.respect_robots and parsed.is_absolute:
            policy = self._robots.policy_for(self.browser.client, parsed.host)
            if not policy.allows(parsed.path):
                raise RobotsDisallowedError(f"robots.txt disallows {parsed.path} on {parsed.host}")
            extra_delay = policy.crawl_delay
        self._think(extra_delay)
        response = self._navigate(url)
        for _ in range(self.config.max_transient_retries + self.config.max_captcha_attempts):
            if response.status == 429:
                self.stats.rate_limited += 1
                retry_after = float(response.headers.get("Retry-After") or self.config.retry_backoff)
                self.internet.clock.sleep(retry_after + 0.1)
                response = self._navigate(url)
            elif response.status == 403 and self._looks_like_captcha():
                response = self._clear_captcha(url)
            elif response.status in (502, 503, 504):
                self.stats.transient_retries += 1
                self.internet.clock.sleep(self.config.retry_backoff)
                response = self._navigate(url)
            else:
                break
        self.stats.pages_fetched += 1
        return response

    def _navigate(self, url: str) -> Response:
        try:
            return self.browser.get(url)
        except TimeoutException:
            self.stats.timeouts += 1
            raise

    def _think(self, minimum: float = 0.0) -> None:
        """Human-like pause between page loads (at least ``minimum``)."""
        delay = self._rng.uniform(self.config.min_think_time, self.config.max_think_time)
        self.internet.clock.sleep(max(delay, minimum))

    # -- captcha handling ---------------------------------------------------------

    def _looks_like_captcha(self) -> bool:
        try:
            self.browser.find_element(By.ID, "captcha-challenge")
            return True
        except NoSuchElementException:
            return False

    def _clear_captcha(self, url: str) -> Response:
        """Extract the challenge, solve it with 2Captcha, retry the URL."""
        self.stats.captchas_seen += 1
        if self.solver is None:
            raise WebDriverException("hit a captcha wall with no solver configured")
        element = self.browser.find_element(By.ID, "captcha-challenge")
        challenge_id = element.get_attribute("data-challenge-id") or ""
        prompt = element.find_element(By.CSS_SELECTOR, "p.prompt").text
        try:
            answer = self.solver.solve_with_retries(prompt, attempts=self.config.max_captcha_attempts)
        except CaptchaError as error:
            raise WebDriverException(f"captcha solving failed: {error}") from error
        self.stats.captchas_solved += 1
        from repro.web.http import Url

        retry_url = Url.parse(url).with_params(captcha_id=challenge_id, captcha_answer=answer)
        return self._navigate(str(retry_url))


def try_locators(browser_or_element, locators: list[tuple[str, str]]) -> WebElement | None:
    """Return the first element matched by any locator, else ``None``.

    This is how the scraper copes with the varying page structures: try the
    variant-A locator, fall back to variant B, treat total absence as "the
    attribute is not on this page".
    """
    for by, value in locators:
        try:
            return browser_or_element.find_element(by, value)
        except NoSuchElementException:
            continue
    return None
