"""The measurement scraper (the paper's Data Collection stage).

Built on the Selenium-like :mod:`repro.web.browser`: a polite base scraper
that rate-limits itself, mimics human pacing, solves captcha walls with the
2Captcha client, and reacts to ``NoSuchElementException`` /
``TimeoutException``; plus three site-specific crawlers (listing site,
bot websites, GitHub).
"""

from repro.scraper.base import PoliteScraper, ScrapeStats, try_locators
from repro.scraper.topgg import PermissionStatus, ScrapedBot, TopGGScraper
from repro.scraper.website import PolicyFetchResult, WebsiteScraper
from repro.scraper.github import RepoFetchResult, GitHubScraper

__all__ = [
    "GitHubScraper",
    "PermissionStatus",
    "PoliteScraper",
    "PolicyFetchResult",
    "RepoFetchResult",
    "ScrapeStats",
    "ScrapedBot",
    "TopGGScraper",
    "WebsiteScraper",
    "try_locators",
]
