"""Bot-website crawler: privacy-policy discovery.

The paper automates policy discovery "using the Selenium Python framework
and leveraging element locators": visit the bot's website, hunt for a
privacy-policy link across the structural variants, follow it, and record
whether a valid policy page exists.  "If the website link is not available
and a privacy policy is not found, we assume broken traceability."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scraper.base import PoliteScraper
from repro.web.browser import By, NoSuchElementException, TimeoutException, WebDriverException


@dataclass
class PolicyFetchResult:
    """Outcome of hunting one bot's privacy policy."""

    website_reachable: bool
    policy_link_found: bool
    policy_page_valid: bool
    policy_text: str = ""


#: Anchor texts that advertise a privacy policy (matched case-insensitively,
#: so "Privacy policy" and "PRIVACY POLICY" pages are found too).
_POLICY_LINK_TEXTS = ("privacy policy", "privacy", "privacy notice")
#: Anchor texts that lead to an intermediate legal page.
_LEGAL_LINK_TEXTS = ("legal", "terms & legal")


class WebsiteScraper(PoliteScraper):
    """Find and fetch privacy policies from bot websites."""

    def fetch_policy(self, website_url: str) -> PolicyFetchResult:
        try:
            response = self.fetch(website_url)
        except (TimeoutException, WebDriverException):
            return PolicyFetchResult(False, False, False)
        if response.status != 200:
            return PolicyFetchResult(False, False, False)
        policy_href = self._find_policy_href()
        if policy_href is None:
            legal_href = self._find_link_by_texts(_LEGAL_LINK_TEXTS)
            if legal_href is not None:
                try:
                    self.fetch(str(self.browser.current_url.join(legal_href)))
                except (TimeoutException, WebDriverException):
                    return PolicyFetchResult(True, False, False)
                policy_href = self._find_policy_href()
        if policy_href is None:
            return PolicyFetchResult(True, False, False)
        policy_url = str(self.browser.current_url.join(policy_href))
        try:
            response = self.fetch(policy_url)
        except (TimeoutException, WebDriverException):
            return PolicyFetchResult(True, True, False)
        if response.status != 200:
            return PolicyFetchResult(True, True, False)
        text = self._extract_policy_text()
        return PolicyFetchResult(True, True, bool(text), policy_text=text)

    # -- element location ----------------------------------------------------

    def _find_policy_href(self) -> str | None:
        return self._find_link_by_texts(_POLICY_LINK_TEXTS)

    def _find_link_by_texts(self, texts: tuple[str, ...]) -> str | None:
        # The paper's "varying page structures" include arbitrary casing of
        # the anchor text ("Privacy policy", "PRIVACY POLICY"), which an
        # exact LINK_TEXT locator misses — compare casefolded instead.
        wanted = {text.casefold() for text in texts}
        for element in self.browser.find_elements(By.TAG_NAME, "a"):
            if element.text.strip().casefold() not in wanted:
                continue
            href = element.get_attribute("href")
            if href:
                return href
        return None

    def _extract_policy_text(self) -> str:
        try:
            return self.browser.find_element(By.ID, "policy").text
        except NoSuchElementException:
            # Fall back to the whole body for unconventional layouts.
            try:
                return self.browser.find_element(By.CSS_SELECTOR, "body").text
            except NoSuchElementException:
                return ""
