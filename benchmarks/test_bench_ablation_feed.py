"""Ablation: does the honeypot's conversational feed matter?

The methodology invests in a realistic OSN-style feed so guilds "appear
active and in use".  A cautious operator only snoops on guilds that look
lived-in; without the feed (only the 4 token messages present) the guild
looks dead and the Melonian-style trigger never fires.
"""

from repro.discordsim.platform import DiscordPlatform
from repro.honeypot import HoneypotExperiment
from repro.web.network import VirtualInternet


def _campaign(paper_world, feed_messages: int, seed: int = 77):
    melonian = paper_world.ecosystem.bot_by_name("Melonian")
    others = [bot for bot in paper_world.ecosystem.top_voted(20) if bot.name != "Melonian"][:19]
    platform = DiscordPlatform(captcha_seed=seed)
    internet = VirtualInternet(platform.clock, seed=seed)
    experiment = HoneypotExperiment(platform, internet, seed=seed)
    return experiment.run([melonian] + others, feed_messages=feed_messages)


def test_bench_feed_enables_detection(benchmark, paper_world):
    report = benchmark.pedantic(lambda: _campaign(paper_world, feed_messages=25), rounds=1, iterations=1)
    assert [outcome.bot_name for outcome in report.flagged_bots] == ["Melonian"]


def test_bench_no_feed_misses_cautious_operator(benchmark, paper_world):
    report = benchmark.pedantic(lambda: _campaign(paper_world, feed_messages=0), rounds=1, iterations=1)
    assert report.flagged_bots == []  # dead-looking guild -> no snooping
    # And the ground truth says we *missed* an invasive bot.
    assert report.false_negatives >= 1
    assert report.recall < 1.0
