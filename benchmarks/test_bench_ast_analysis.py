"""Extension benchmark: AST vs substring permission-check detection.

Quantifies the measurement-precision upgrade for Python repositories: on
the generator's idiomatic corpus both methods agree, while on adversarial
snippets (pattern inside a string literal; discord.py decorator with none
of the Table-3 strings) substring matching produces the false positives
and false negatives that structural analysis avoids.
"""

from repro.codeanalysis.patterns import contains_check
from repro.codeanalysis.pyast import PythonAstAnalyzer

ADVERSARIAL = {
    # substring false positive: the "check" lives in documentation text.
    "docs_string.py": 'HELP_TEXT = "call perms.has( to verify permissions"\n',
    # substring false negative: the idiomatic discord.py guard.
    "decorator.py": "@commands.has_permissions(kick_members=True)\nasync def kick(ctx):\n    pass\n",
    # agreement: a real runtime check.
    "real_check.py": "def guard(ctx):\n    return ctx.perms.has(KICK)\n",
    # agreement: clean code.
    "clean.py": "async def ping(ctx):\n    await ctx.reply('pong')\n",
}


def test_bench_corpus_agreement(benchmark, paper_world):
    """On idiomatic generated Python code, AST matches the paper's method."""
    analyzer = PythonAstAnalyzer()
    repos = [
        bot.github.files
        for bot in paper_world.ecosystem.bots
        if bot.github is not None and bot.github.has_source_code and bot.github.language == "Python"
    ]
    assert len(repos) > 50

    def analyze_all():
        agreements = 0
        for files in repos:
            substring = contains_check(files, language="Python")
            structural = analyzer.analyze(files).performs_check
            agreements += substring == structural
        return agreements / len(repos)

    agreement = benchmark(analyze_all)
    assert agreement == 1.0


def test_bench_adversarial_divergence(benchmark):
    """Each adversarial file exposes the expected divergence."""
    analyzer = PythonAstAnalyzer()

    def verdicts():
        return {
            name: (
                contains_check({name: content}, language="Python"),
                analyzer.analyze({name: content}).performs_check,
            )
            for name, content in ADVERSARIAL.items()
        }

    results = benchmark(verdicts)
    assert results["docs_string.py"] == (True, False)  # substring FP
    assert results["decorator.py"] == (False, True)  # substring FN
    assert results["real_check.py"] == (True, True)
    assert results["clean.py"] == (False, False)
