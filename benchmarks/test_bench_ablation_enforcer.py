"""Ablation: the runtime policy enforcer (Discord vs Slack/Teams posture).

The paper's architectural point (Sections 2, 6): Discord delegates user-
permission checks to third-party developers, so an unchecked privileged bot
enables permission re-delegation; Slack/MS Teams interpose a runtime
policy enforcer.  This benchmark runs the same re-delegation attack against
a population of *unchecked* moderation bots on both postures and measures
the attack success rate: near-total on the Discord posture, zero under the
enforcer.
"""

from repro.discordsim.behaviors import MODERATION_UNCHECKED, build_runtime
from repro.discordsim.oauth import build_invite_url
from repro.discordsim.permissions import Permission, Permissions
from repro.platforms import make_platform
from repro.web.captcha import TwoCaptchaClient

N_BOTS = 30


def _attack_success_rate(profile_name: str) -> float:
    platform = make_platform(profile_name, captcha_seed=5)
    solver = TwoCaptchaClient(platform.clock, accuracy=1.0, seed=5)
    successes = 0
    for index in range(N_BOTS):
        owner = platform.create_user(f"owner{index}", phone_verified=True)
        guild = platform.create_guild(owner, f"G{index}")
        developer = platform.create_user(f"dev{index}", phone_verified=True)
        application = platform.register_application(developer, f"ModBot{index}")
        if platform.policy.vetting_review:
            platform.vet_application(application.client_id)
        url = build_invite_url(application.client_id, Permissions.of(Permission.ADMINISTRATOR))
        screen = platform.begin_install(owner.user_id, url, guild.guild_id)
        answer = solver.solve(screen.captcha_prompt)
        platform.complete_install(owner.user_id, guild.guild_id, url, screen.captcha_challenge_id, answer)
        build_runtime(platform, application.bot_user.user_id, MODERATION_UNCHECKED)

        victim = platform.create_user(f"victim{index}")
        platform.join_guild(victim.user_id, guild.guild_id)
        attacker = platform.create_user(f"attacker{index}")
        platform.join_guild(attacker.user_id, guild.guild_id)
        channel = guild.text_channels()[0]
        platform.post_message(
            attacker.user_id, guild.guild_id, channel.channel_id, f"!kick {victim.user_id}"
        )
        if victim.user_id not in guild.members:
            successes += 1
    return successes / N_BOTS


def test_bench_enforcer_ablation(benchmark):
    def run_both():
        return {name: _attack_success_rate(name) for name in ("discord", "slack")}

    rates = benchmark.pedantic(run_both, rounds=1, iterations=1)
    # Discord posture: every unchecked bot is exploitable.
    assert rates["discord"] == 1.0
    # Runtime enforcer: the same bots, same attack, zero successes.
    assert rates["slack"] == 0.0
    print(f"\nre-delegation success rate: discord={rates['discord']:.0%}, slack={rates['slack']:.0%}")


def test_bench_telegram_matches_discord(benchmark):
    rate = benchmark.pedantic(lambda: _attack_success_rate("telegram"), rounds=1, iterations=1)
    assert rate == 1.0  # no enforcer -> same exposure as Discord
