"""ROBUSTNESS: the long-lived vetting service under hostile chaos.

Stands the serving gate up over a 10^4-bot population, installs the
hostile fault schedule on the shared virtual internet, and drives a
scripted multi-wave burst — repeats for the verdict cache, listing
updates for invalidation, guild audits, and a kill-and-restart
mid-burst — then checks the serving contract:

- zero unhandled exceptions: every outcome is a classified response or a
  counted transport failure;
- every response is a verdict (possibly ``degraded``/``stale``) or an
  explicit 429/503 carrying ``Retry-After`` and a fault-ledger record;
- ``/readyz`` recovers after the restart;
- cached verdicts are cheap: p99 virtual latency of cache hits is at
  least 10x below the cold-vetting p99.
"""

from repro.ecosystem.generator import EcosystemConfig, generate_ecosystem
from repro.serving import LoadScript, ServicePolicy, ServingHarness, VettingService
from repro.sites.botwebsites import BotWebsiteBuilder
from repro.web.chaos import FaultSchedule
from repro.web.network import VirtualClock, VirtualInternet

N_BOTS = 10_000
SEED = 11

POLICY = ServicePolicy(honeypot_observation=1_800.0)

SCRIPT = LoadScript(
    waves=5,
    requests_per_wave=30,
    wave_gap=1_800.0,
    repeat_fraction=0.6,
    audit_every=13,
    update_every=29,
    restart_at_wave=3,
)


#: The kill-storm variant: 3 interleaved clients over a 4-worker pool, the
#: whole service restarted at wave 2, then 2 of the replacement pool's 4
#: workers SIGKILLed in the middle of wave 3 (a restart builds a fresh
#: pool, so storming after it keeps the storm's scars on the final report).
KILL_STORM_SCRIPT = LoadScript(
    waves=5,
    requests_per_wave=10,
    clients=3,
    wave_gap=1_800.0,
    repeat_fraction=0.6,
    audit_every=13,
    update_every=29,
    restart_at_wave=2,
    kill_workers_at_wave=3,
    kill_workers=2,
)


def _build(workers: int = 0):
    ecosystem = generate_ecosystem(EcosystemConfig(n_bots=N_BOTS, seed=SEED, honeypot_window=100))
    clock = VirtualClock()
    internet = VirtualInternet(clock, seed=SEED)
    BotWebsiteBuilder(ecosystem).register(internet)
    internet.install_chaos(FaultSchedule("hostile", seed=SEED))
    service = VettingService(internet, ecosystem.bots, policy=POLICY, seed=SEED, workers=workers)
    for index in range(3):
        roster = [bot.name for bot in ecosystem.bots[index * 5 : index * 5 + 5]]
        service.register_guild(f"community-{index}", roster)
    return service, ServingHarness(internet, service, seed=SEED)


def test_bench_serving_contract_under_hostile_chaos(benchmark):
    service, harness = _build()

    report = benchmark.pedantic(lambda: harness.run(SCRIPT), rounds=1, iterations=1)

    assert report.requests_sent == SCRIPT.waves * SCRIPT.requests_per_wave

    # Zero unhandled exceptions (anything else would have propagated), and
    # every outcome classified: verdicts, chaos-injected walls, mangled
    # bodies, explicit sheds, explained 5xx, or counted transport failures.
    assert report.contract_ok, report.summary_lines()
    assert set(report.status_counts) <= {200, 429, 503}
    assert report.unexplained_5xx == 0
    assert report.shed_missing_retry_after == 0

    # The burst produced real verdicts and exercised the cache.
    assert report.verdicts > 0
    assert report.cached_latencies, "the repeat traffic never hit the verdict cache"

    # /readyz recovered after the mid-burst kill + restart.
    assert report.readyz_recovered
    # The restart preserved the durable verdict store.
    assert len(harness.service.cache) > 0

    # Cached verdicts are at least an order of magnitude cheaper at p99.
    assert report.cached_p99 > 0
    assert report.cold_p99 >= 10 * report.cached_p99

    print()
    for line in report.summary_lines():
        print(line)
    print(harness.service.metrics.summary_line())


def test_bench_serving_same_seed_runs_identical():
    _, first = _build()
    _, second = _build()
    assert first.run(SCRIPT).to_dict() == second.run(SCRIPT).to_dict()


def test_bench_serving_kill_storm_on_worker_pool(benchmark):
    """ROBUSTNESS: the serving contract survives losing half the pool.

    Same hostile world as the base benchmark, but the vets run on a
    4-worker pool with 3 interleaved clients — and 2 of the 4 workers are
    SIGKILLed in the middle of wave 2, followed by a full service restart
    at wave 3.  The contract must not notice: every admitted request ends
    in exactly one terminal response, the dispatch book balances at every
    checkpoint, and the report (minus the execution plane) is
    byte-identical to the same script run with no pool at all.
    """
    service, harness = _build(workers=4)
    try:
        report = benchmark.pedantic(
            lambda: harness.run(KILL_STORM_SCRIPT), rounds=1, iterations=1
        )
    finally:
        harness.service.shutdown()

    expected = KILL_STORM_SCRIPT.waves * KILL_STORM_SCRIPT.requests_per_wave * KILL_STORM_SCRIPT.clients
    assert report.requests_sent == expected
    assert report.contract_ok, report.summary_lines()
    assert report.ledger_consistent
    assert report.workers_killed == 2
    assert report.readyz_recovered

    # The storm actually happened: the supervisor replaced the dead slots.
    assert report.pool is not None
    assert report.pool["restarts"] >= 2
    assert report.pool["dispatch"]["consistent"]

    # Byte-equality with the no-pool control run (execution-plane fields
    # excluded): worker crashes may cost wall-clock, never verdict bytes.
    control_service, control = _build(workers=0)
    control_report = control.run(KILL_STORM_SCRIPT)
    assert control_report.comparable_dict() == report.comparable_dict()

    print()
    for line in report.summary_lines():
        print(line)
    dispatch = report.pool["dispatch"]
    print(
        f"pool: {report.pool['restarts']} restarts, {dispatch['opened']} dispatched, "
        f"{dispatch['redispatched']} re-dispatched, {dispatch['duplicates_suppressed']} suppressed"
    )
