"""TXT-HONEY: the dynamic-analysis campaign.

Paper: 500 most-voted bots tested in isolated guilds (5 personas, 25 feed
messages, URL/email/Word/PDF tokens).  Exactly one bot — "Melonian" — was
caught: the URL and Word-document tokens fired, and the operator posted
"wtf is this bro" as the bot.
"""

from repro.discordsim.platform import DiscordPlatform
from repro.honeypot import HoneypotExperiment, TokenKind
from repro.web.network import VirtualInternet


def test_bench_honeypot_headline(benchmark, paper_scale_result, paper_config):
    honeypot = paper_scale_result.honeypot
    assert honeypot is not None
    # Benchmark the attribution step: grouping triggers by guild context.
    grouped = benchmark(
        lambda: {
            record.context: record.kind for record in honeypot.triggers
        }
    )
    assert grouped
    installable = honeypot.bots_tested - honeypot.install_failures
    assert honeypot.bots_tested == paper_config.honeypot_sample_size
    assert installable > 0.6 * honeypot.bots_tested

    flagged = honeypot.flagged_bots
    assert [outcome.bot_name for outcome in flagged] == ["Melonian"]
    assert flagged[0].trigger_kinds == {TokenKind.URL, TokenKind.WORD}
    assert "wtf is this bro" in flagged[0].suspicious_messages
    assert honeypot.precision == 1.0 and honeypot.recall == 1.0
    # The manual mobile-verification friction: once per shared persona.
    assert honeypot.manual_verifications == paper_config.personas_per_guild


def test_bench_honeypot_campaign_throughput(benchmark, paper_world):
    """Benchmark provisioning + observing a 50-guild campaign."""
    melonian = paper_world.ecosystem.bot_by_name("Melonian")
    others = [bot for bot in paper_world.ecosystem.top_voted(50) if bot.name != "Melonian"][:49]
    sample = [melonian] + others

    def campaign():
        platform = DiscordPlatform(captcha_seed=9)
        internet = VirtualInternet(platform.clock, seed=9)
        experiment = HoneypotExperiment(platform, internet, seed=9)
        return experiment.run(sample)

    report = benchmark(campaign)
    assert report.bots_tested == 50
    assert [outcome.bot_name for outcome in report.flagged_bots] == ["Melonian"]
