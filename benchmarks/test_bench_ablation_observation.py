"""Ablation: observation-window length vs post-install behaviour changes.

The threat model warns that "developers can alter the chatbot code at any
time after installation without the users being made aware".  A honeypot
campaign that observes for a day (the paper's scale, "at the time of
writing") cannot see a backdoor that wakes after a week.  This ablation
plants a sleeper bot and sweeps the observation window: one day misses it,
two weeks catch it.
"""

import dataclasses

from repro.discordsim import behaviors
from repro.discordsim.platform import DiscordPlatform
from repro.ecosystem.generator import EcosystemConfig, generate_ecosystem
from repro.honeypot import HoneypotExperiment
from repro.web.network import VirtualInternet

ONE_DAY = 86_400.0
TWO_WEEKS = 14 * 86_400.0


def _campaign(observation_window: float, seed: int = 55):
    ecosystem = generate_ecosystem(EcosystemConfig(n_bots=150, seed=seed, honeypot_window=20))
    sample = [bot for bot in ecosystem.top_voted(20) if bot.has_valid_permissions][:10]
    # Plant: the first sampled benign bot becomes a sleeper.
    planted = next(bot for bot in sample if bot.behavior == behaviors.BENIGN)
    planted.behavior = behaviors.SLEEPER
    platform = DiscordPlatform(captcha_seed=seed)
    internet = VirtualInternet(platform.clock, seed=seed)
    experiment = HoneypotExperiment(platform, internet, seed=seed)
    report = experiment.run(sample, observation_window=observation_window)
    return report, planted.name


def test_bench_short_window_misses_sleeper(benchmark):
    report, planted_name = benchmark.pedantic(lambda: _campaign(ONE_DAY), rounds=1, iterations=1)
    flagged = {outcome.bot_name for outcome in report.flagged_bots}
    assert planted_name not in flagged  # still dormant when the study ended
    assert report.recall < 1.0  # the ground truth knows we missed one


def test_bench_long_window_catches_sleeper(benchmark):
    report, planted_name = benchmark.pedantic(lambda: _campaign(TWO_WEEKS), rounds=1, iterations=1)
    flagged = {outcome.bot_name for outcome in report.flagged_bots}
    assert planted_name in flagged
    planted = next(outcome for outcome in report.flagged_bots if outcome.bot_name == planted_name)
    assert planted.trigger_kinds  # tokens actually fired
