"""FIG1: the methodology pipeline itself, end to end.

Figure 1 is the paper's architecture diagram; its reproduction is the
executable pipeline.  This benchmark runs data collection -> traceability
-> code analysis -> honeypot over a 1,000-bot world and checks that every
stage produced its artifact.
"""

from repro.core.config import PipelineConfig
from repro.core.pipeline import AssessmentPipeline
from repro.core.report import render_full_report


def test_bench_full_pipeline(benchmark):
    def run():
        config = PipelineConfig().scaled(1_000, honeypot_sample_size=100)
        return AssessmentPipeline(config).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    assert result.bots_collected == 1_000
    assert result.permission_distribution is not None
    assert result.traceability_summary is not None
    assert result.code_summary is not None
    assert result.honeypot is not None
    assert result.validation is not None

    report = render_full_report(result)
    assert "Figure 3" in report and "Table 2" in report
    print()
    for line in result.summary_lines():
        print(line)
    print(
        f"virtual time: {result.virtual_seconds / 3600:.1f}h, "
        f"captcha spend: ${result.captcha_dollars:.2f}, "
        f"pages: {result.scrape_stats.pages_fetched}"
    )


def test_bench_data_collection_stage(benchmark):
    """Throughput of stage 1 alone (crawl + invite resolution)."""
    from repro.core.pipeline import PipelineWorld

    config = PipelineConfig(
        n_bots=500,
        seed=11,
        run_traceability=False,
        run_code_analysis=False,
        run_honeypot=False,
        honeypot_sample_size=10,
    )

    def collect():
        world = PipelineWorld.build(config)
        pipeline = AssessmentPipeline(config, world=world)
        _, crawl = pipeline.collect()
        return crawl

    crawl = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert len(crawl.bots) == 500
