"""SCALING: streamed population generation — bounded RSS at any scale.

ISSUE 9's tentpole: `repro.ecosystem` yields the population lazily from
the seed, so a run's resident set no longer grows with the population.
This bench records the two numbers the trajectory file tracks — streaming
throughput (bots/sec) and peak RSS — at 2x10^4 (paper scale) and 10^5
bots, and holds two bars:

* peak RSS of a full streamed sweep stays under a fixed ceiling at both
  scales (a materialized 10^5-bot build peaks ~7x higher);
* the comparable result JSON of a full streamed pipeline run at paper
  scale is byte-identical to the materialized session golden.

Each sweep runs in a subprocess so ``ru_maxrss`` measures that sweep
alone, not whatever the benchmark session allocated before it.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import repro
from repro.core.pipeline import AssessmentPipeline
from repro.core.serialize import comparable_result, result_to_dict

SRC = Path(repro.__file__).resolve().parents[1]

#: The ISSUE's two trajectory scales; override to shrink locally.
STREAM_SCALES = (
    int(os.environ.get("REPRO_BENCH_STREAMING_SCALE_SMALL", 20_000)),
    int(os.environ.get("REPRO_BENCH_STREAMING_SCALE_LARGE", 100_000)),
)

#: Fixed peak-RSS ceiling for a streamed sweep (KiB).  The interpreter
#: baseline is ~26 MB; materializing 10^5 bots peaks ~192 MB.  64 MB
#: gives headroom for allocator noise while failing loudly on any
#: accumulator that retains the population.
STREAM_RSS_CEILING_KB = 64 * 1024

_SWEEP = """
import json, resource, sys, time
from repro.ecosystem.stream import iter_bots
n = int(sys.argv[1])
t0 = time.perf_counter()
count = sum(1 for _ in iter_bots(seed=2022, n_bots=n))
wall = time.perf_counter() - t0
assert count == n
print(json.dumps({
    "bots": n,
    "wall_s": wall,
    "bots_per_sec": count / wall,
    "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
"""


def _sweep(n_bots: int) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _SWEEP, str(n_bots)],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
        check=True,
    )
    return json.loads(proc.stdout)


def test_bench_stream_rss_stays_flat(benchmark):
    small_scale, large_scale = STREAM_SCALES
    small = _sweep(small_scale)
    large = benchmark.pedantic(lambda: _sweep(large_scale), rounds=1, iterations=1)

    for sweep in (small, large):
        benchmark.extra_info[f"bots_{sweep['bots']}"] = {
            "bots_per_sec": round(sweep["bots_per_sec"]),
            "peak_rss_kb": sweep["peak_rss_kb"],
            "wall_s": round(sweep["wall_s"], 2),
        }

    assert small["peak_rss_kb"] < STREAM_RSS_CEILING_KB
    assert large["peak_rss_kb"] < STREAM_RSS_CEILING_KB, (
        f"streamed sweep at {large_scale} bots peaked at {large['peak_rss_kb']} KiB "
        f"(ceiling {STREAM_RSS_CEILING_KB} KiB)"
    )
    # Size independence: 5x the population must not move RSS materially.
    assert large["peak_rss_kb"] < 1.5 * small["peak_rss_kb"]


def _comparable(result) -> str:
    return json.dumps(comparable_result(result_to_dict(result)), sort_keys=True, indent=1)


def test_bench_streamed_pipeline_byte_identity(benchmark, paper_config, paper_scale_result):
    """A full --stream run at paper scale matches the materialized golden."""
    config = replace(paper_config, stream=True, chunk_size=2_048)
    streamed = benchmark.pedantic(
        lambda: AssessmentPipeline(config=config).run(), rounds=1, iterations=1
    )
    benchmark.extra_info["scale"] = config.n_bots
    benchmark.extra_info["chunk_size"] = config.chunk_size
    assert _comparable(streamed) == _comparable(paper_scale_result)
