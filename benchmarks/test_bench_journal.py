"""OVERHEAD + RECOVERY: the write-ahead journal must be near-free.

Two acceptance bars from the crash-anywhere work:

1. **Overhead** — journaling every completed honeypot bot unit must
   cost < 10% wall-clock on the honeypot stage at the batched fsync
   cadence (``journal_fsync_every=64``).  The stage's work per unit
   (guild provisioning, feed dispatch, a full observation window)
   dwarfs one JSONL append, so anything above the bar means the
   journal is doing per-unit work it shouldn't.  The per-record
   default (``fsync_every=1``) deliberately pays one disk barrier per
   append for exactly-one-record ack durability; that price is
   measured and tracked separately (here as a printed line, and as
   throughput in ``BENCH_STORAGE.json``) rather than held to the 10%
   bar — it is bounded by the disk, not by the journal.

2. **Recovery proportionality** — a run killed after 99% of the
   traceability stage's units must redo < 5% of them on resume.  Redone
   units are measured directly from the journal: replayed records are
   never re-appended, so the resumed process's appends ARE the redo set.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro.core.checkpoint import STAGE_HONEYPOT, STAGE_TRACEABILITY
from repro.core.config import PipelineConfig
from repro.core.crashpoints import ENV_CRASH_AT, EXIT_CODE
from repro.core.journal import WriteAheadJournal
from repro.core.pipeline import AssessmentPipeline

SRC = Path(repro.__file__).resolve().parents[1]
JOURNAL_BENCH_SCALE = int(os.environ.get("REPRO_BENCH_JOURNAL_SCALE", 600))

#: < 10% relative overhead, with a small absolute floor so the assertion
#: is meaningful on hosts where the whole stage runs in milliseconds.
OVERHEAD_CEILING = 0.10
OVERHEAD_FLOOR_SECONDS = 0.25


def _config(journal_path: str | None, fsync_every: int = 64) -> PipelineConfig:
    return PipelineConfig(
        n_bots=JOURNAL_BENCH_SCALE,
        seed=13,
        honeypot_sample_size=min(120, JOURNAL_BENCH_SCALE),
        validation_sample_size=20,
        journal_path=journal_path,
        journal_fsync_every=fsync_every,
    )


def _honeypot_wall(journal_path: str | None, fsync_every: int = 64) -> float:
    start = time.monotonic()
    result = AssessmentPipeline(_config(journal_path, fsync_every)).run()
    total = time.monotonic() - start
    stage = result.metrics.stage(STAGE_HONEYPOT).wall_seconds
    label = "off" if journal_path is None else f"fsync_every={fsync_every}"
    print(f"journal={label:14s} honeypot={stage:.3f}s total={total:.3f}s")
    return stage


def test_journal_overhead_under_ten_percent(tmp_path) -> None:
    baseline = _honeypot_wall(None)
    journaled = _honeypot_wall(str(tmp_path / "journal.wal"))
    # The per-record-durable default pays the disk's barrier price; print
    # it for the trajectory but hold the 10% bar at the batched cadence.
    _honeypot_wall(str(tmp_path / "journal-durable.wal"), fsync_every=1)
    ceiling = max(baseline * (1.0 + OVERHEAD_CEILING), baseline + OVERHEAD_FLOOR_SECONDS)
    print(f"overhead={(journaled / baseline - 1.0) * 100:+.1f}% (ceiling {OVERHEAD_CEILING * 100:.0f}%)")
    assert journaled <= ceiling, (
        f"journaled honeypot stage took {journaled:.3f}s vs {baseline:.3f}s baseline"
    )


def _run_driver(workdir: Path, config: dict, extra_env: dict | None = None) -> subprocess.CompletedProcess:
    config_path = workdir / "config.json"
    config_path.write_text(json.dumps(config))
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(ENV_CRASH_AT, None)
    if extra_env:
        env.update(extra_env)
    return subprocess.run(
        [sys.executable, "-m", "repro.core.crash_driver", str(config_path), str(workdir / "out.json")],
        env=env, capture_output=True, text=True, timeout=600,
    )


def test_resume_after_99_percent_redoes_under_5_percent(tmp_path) -> None:
    config = {
        "n_bots": 400,
        "seed": 13,
        "run_code_analysis": False,
        "run_honeypot": False,
        "validation_sample_size": 20,
        "journal_path": str(tmp_path / "journal.wal"),
        "checkpoint_path": str(tmp_path / "ckpt.json"),
    }
    # Reference run: learn the stage's unit count, then start fresh.
    reference = _run_driver(tmp_path, config)
    assert reference.returncode == 0, reference.stderr
    units = len(WriteAheadJournal(config["journal_path"]).pending(STAGE_TRACEABILITY))
    assert units >= 100, f"scale too small to measure a 99% kill ({units} units)"
    for name in ("journal.wal", "ckpt.json", "out.json"):
        (tmp_path / name).unlink(missing_ok=True)

    kill_at = math.ceil(units * 0.99)
    crashed = _run_driver(tmp_path, config, {ENV_CRASH_AT: f"traceability.after_bot:{kill_at}"})
    assert crashed.returncode == EXIT_CODE
    survived = len(WriteAheadJournal(config["journal_path"]).pending(STAGE_TRACEABILITY))

    resumed = _run_driver(tmp_path, config)
    assert resumed.returncode == 0, resumed.stderr
    total = len(WriteAheadJournal(config["journal_path"]).pending(STAGE_TRACEABILITY))
    redone = total - survived
    print(f"units={units} survived={survived} redone={redone} "
          f"({redone / total * 100:.2f}% of {total})")
    assert total == units
    assert redone / total < 0.05, f"resume redid {redone}/{total} units"
