"""Benchmark fixtures.

``paper_scale_result`` runs the pipeline once per session at the paper's
full scale (20,915 bots, 500-bot honeypot, ~35s) so each table/figure
benchmark re-derives its artifact from a realistic corpus and checks its
shape against the paper's reported numbers.

Set ``REPRO_BENCH_SCALE`` to shrink the world for quick iterations.
"""

from __future__ import annotations

import os

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import AssessmentPipeline

PAPER_SCALE = 20_915
BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", PAPER_SCALE))


def tolerance(points: float) -> float:
    """Absolute tolerance in percentage points, widened at smaller scales."""
    if BENCH_SCALE >= PAPER_SCALE:
        return points
    return points * max(1.0, (PAPER_SCALE / BENCH_SCALE) ** 0.5)


@pytest.fixture(scope="session")
def paper_config() -> PipelineConfig:
    return PipelineConfig().scaled(
        BENCH_SCALE, honeypot_sample_size=min(500, BENCH_SCALE)
    )


@pytest.fixture(scope="session")
def paper_scale_result(paper_config):
    pipeline = AssessmentPipeline(paper_config)
    return pipeline.run()


@pytest.fixture(scope="session")
def paper_world(paper_config):
    """A fresh world (same seed) for benchmarks that drive stages directly."""
    from repro.core.pipeline import PipelineWorld

    return PipelineWorld.build(paper_config)
