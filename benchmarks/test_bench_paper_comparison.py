"""The capstone benchmark: every paper metric, compared programmatically.

`repro.analysis.paper` encodes all 20 statistics the paper reports; this
benchmark scores the session's full-scale pipeline run against them and
demands that every one lands within tolerance — the single-assert summary
of the entire reproduction.
"""

from repro.analysis.paper import PAPER_METRICS, compare_with_paper


def test_bench_full_scale_reproduction(benchmark, paper_scale_result):
    report = benchmark(compare_with_paper, paper_scale_result)
    assert len(report.rows) == len(PAPER_METRICS)
    failures = [
        (row.metric.description, row.metric.value, round(row.measured, 2))
        for row in report.failures()
    ]
    assert report.all_within_tolerance, failures
    print()
    print(report.render())
