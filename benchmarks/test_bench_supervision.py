"""ROBUSTNESS: supervision under chaos — adversaries, faults, kill/resume.

The worst realistic campaign: a hostile fault schedule on the transport
plane *and* hostile bot runtimes on the data plane (a crasher, a flooder,
a staller planted in the honeypot sample), sharded, checkpointed, and
killed once mid-run.  The supervision contract:

- the run completes — quarantined and degraded, never crashed;
- every planted adversary lands in the quarantine log with a root cause
  in the fault ledger;
- the honeypot books close: processed + skipped + quarantined == sample;
- a killed run resumes from its checkpoint with quarantines intact.
"""

import pytest

from repro.core.checkpoint import STAGE_HONEYPOT
from repro.core.config import PipelineConfig
from repro.core.pipeline import AssessmentPipeline
from repro.web.chaos import HOSTILE

N_BOTS = 60
SAMPLE = 10
ADVERSARIES = 3

BENCH_HOSTILE = HOSTILE.scaled(
    epoch=120.0,
    window_duration=(30.0, 90.0),
    outage_rate=0.3,
    error_burst_rate=0.5,
    latency_spike_rate=0.4,
    rate_limit_rate=0.4,
    captcha_surge_rate=0.3,
    truncation_rate=0.05,
)


def _config(**overrides) -> PipelineConfig:
    defaults = dict(
        n_bots=N_BOTS,
        seed=3,
        honeypot_sample_size=SAMPLE,
        validation_sample_size=20,
        adversarial_bots=ADVERSARIES,
    )
    defaults.update(overrides)
    return PipelineConfig(**defaults)


def _assert_books_close(result) -> None:
    entry = result.metrics.stage(STAGE_HONEYPOT)
    assert entry is not None
    assert entry.bots_processed + entry.bots_skipped + entry.bots_quarantined == SAMPLE


def test_bench_adversarial_hostile_run_completes(benchmark):
    result = benchmark.pedantic(
        lambda: AssessmentPipeline(_config(chaos_profile=BENCH_HOSTILE, chaos_seed=0)).run(),
        rounds=1,
        iterations=1,
    )
    assert set(result.stage_status.values()) <= {"completed", "degraded"}
    assert result.honeypot is not None
    # Chaos may skip a planted bot before its runtime ever starts (a
    # transport fault is a skip, not a quarantine), but nothing crashes
    # and the books always close.
    assert len(result.quarantines) <= ADVERSARIES
    assert len(result.fault_ledger.quarantine_records()) == len(result.quarantines)
    _assert_books_close(result)

    print()
    print(result.fault_ledger.summary_line())
    print(result.quarantines.summary_line())


def test_bench_calm_adversarial_quarantines_all_three():
    result = AssessmentPipeline(_config()).run()
    assert len(result.quarantines) == ADVERSARIES
    assert set(result.quarantines.by_reason()) == {"crash", "event_flood", "deadline"}
    _assert_books_close(result)


def test_bench_sharded_adversarial_hostile_run_completes():
    result = AssessmentPipeline(
        _config(chaos_profile=BENCH_HOSTILE, chaos_seed=1, shards=4)
    ).run()
    assert set(result.stage_status.values()) <= {"completed", "degraded"}
    assert len(result.fault_ledger.quarantine_records()) == len(result.quarantines)
    _assert_books_close(result)


def test_bench_killed_adversarial_run_resumes_with_quarantines(tmp_path):
    path = str(tmp_path / "pipeline.json")
    uninterrupted = AssessmentPipeline(
        _config(chaos_profile=BENCH_HOSTILE, chaos_seed=0)
    ).run()

    interrupted = AssessmentPipeline(
        _config(chaos_profile=BENCH_HOSTILE, chaos_seed=0, checkpoint_path=path)
    )

    def killed(*args, **kwargs):
        raise KeyboardInterrupt

    interrupted.analyze_code = killed
    with pytest.raises(KeyboardInterrupt):
        interrupted.run()

    resumed = AssessmentPipeline(
        _config(chaos_profile=BENCH_HOSTILE, chaos_seed=0, checkpoint_path=path)
    ).run()
    assert set(resumed.stage_status.values()) <= {"completed", "degraded", "resumed"}
    # Virtual timestamps shift when earlier stages resume instead of re-run;
    # the quarantine *identities* must survive the kill intact.
    assert [
        (r.bot_name, r.reason, r.root_cause) for r in resumed.quarantines.records
    ] == [(r.bot_name, r.reason, r.root_cause) for r in uninterrupted.quarantines.records]
    _assert_books_close(resumed)
