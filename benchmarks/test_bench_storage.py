"""OVERHEAD: the unified durable-storage layer must be near-free.

Two acceptance bars from the storage-chaos work:

1. **Fsync cadence** — the journal's default ``fsync_every=1`` buys
   per-record durability; batching (``fsync_every=64``) must never be
   meaningfully slower than per-record (it exists to be faster on real
   disks), and explicit-sync mode (``0``) bounds the floor.  The
   trajectory file records all three so a regression in the append path
   shows up as a number, not a feeling.

2. **Storage tax** — running a checkpointed + journaled + streamed
   pipeline with the ``calm`` disk-chaos shim installed (every durable
   operation consults the fault plan, none injects) must cost < 5%
   wall-clock over the same run with no shim at 10^4 bots.  The consult
   is two dict operations; anything above the bar means the shim crept
   onto a hot path it doesn't belong on.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.core.config import PipelineConfig
from repro.core.journal import WriteAheadJournal
from repro.core.pipeline import AssessmentPipeline
from repro.core.storage import install_disk_chaos, uninstall_faults

STORAGE_BENCH_SCALE = int(os.environ.get("REPRO_BENCH_STORAGE_SCALE", 10_000))
JOURNAL_RECORDS = int(os.environ.get("REPRO_BENCH_STORAGE_RECORDS", 20_000))

#: < 5% relative overhead, with a small absolute floor so the assertion
#: is meaningful on hosts where the whole run finishes in seconds.
TAX_CEILING = 0.05
TAX_FLOOR_SECONDS = 0.25


def _journal_wall(path: Path, fsync_every: int) -> float:
    journal = WriteAheadJournal(path, fsync_every=fsync_every)
    body = {"verdict": "ok", "padding": "x" * 64}
    start = time.monotonic()
    for index in range(JOURNAL_RECORDS):
        journal.append("bench", f"bot-{index}", body)
    journal.sync()
    journal.close()
    wall = time.monotonic() - start
    print(f"fsync_every={fsync_every:3d}: {JOURNAL_RECORDS} records in {wall:.3f}s "
          f"({JOURNAL_RECORDS / wall:,.0f} rec/s)")
    return wall


def test_batched_fsync_cadence_is_never_slower(tmp_path) -> None:
    per_record = _journal_wall(tmp_path / "wal1", fsync_every=1)
    batched = _journal_wall(tmp_path / "wal64", fsync_every=64)
    explicit = _journal_wall(tmp_path / "wal0", fsync_every=0)
    # Batching trades torn-tail width for throughput; it must never lose
    # that trade (generous slack absorbs scheduler noise on fast disks).
    assert batched <= per_record * 1.25 + 0.1, (
        f"fsync_every=64 ({batched:.3f}s) slower than fsync_every=1 ({per_record:.3f}s)"
    )
    assert explicit <= per_record * 1.25 + 0.1


def _pipeline_wall(tmp_path: Path, shim: bool) -> float:
    config = PipelineConfig(
        n_bots=STORAGE_BENCH_SCALE,
        seed=13,
        honeypot_sample_size=min(200, STORAGE_BENCH_SCALE),
        validation_sample_size=20,
        stream=True,
        chunk_size=2_048,
        checkpoint_path=str(tmp_path / f"ckpt-{shim}.json"),
        journal_path=str(tmp_path / f"journal-{shim}.wal"),
    )
    if shim:
        install_disk_chaos("calm", seed=0)
    else:
        uninstall_faults()
    try:
        start = time.monotonic()
        AssessmentPipeline(config).run()
        wall = time.monotonic() - start
    finally:
        uninstall_faults()
    print(f"shim={'calm' if shim else 'off '}: {STORAGE_BENCH_SCALE} bots in {wall:.3f}s")
    return wall


def test_storage_tax_under_five_percent(tmp_path) -> None:
    baseline = _pipeline_wall(tmp_path, shim=False)
    shimmed = _pipeline_wall(tmp_path, shim=True)
    ceiling = max(baseline * (1.0 + TAX_CEILING), baseline + TAX_FLOOR_SECONDS)
    print(f"storage tax={(shimmed / baseline - 1.0) * 100:+.1f}% (ceiling {TAX_CEILING * 100:.0f}%)")
    assert shimmed <= ceiling, (
        f"calm-shimmed pipeline took {shimmed:.3f}s vs {baseline:.3f}s bare"
    )
