"""FIG3 + TXT-PERM: the permission-request distribution.

Paper: SEND_MESSAGES requested by 59.18% and ADMINISTRATOR by 54.86% of the
15,525 bots with valid permissions; 74% of the 20,915 scraped bots had valid
permissions (26% invalid: bad links, removed bots, slow redirects).
"""

from repro.analysis.permission_stats import PermissionDistribution
from repro.analysis.tables import render_bar_chart

from conftest import tolerance

PAPER_SEND_MESSAGES = 59.18
PAPER_ADMINISTRATOR = 54.86
PAPER_VALID_FRACTION = 0.74


def test_bench_fig3(benchmark, paper_scale_result):
    bots = paper_scale_result.crawl.bots

    dist = benchmark(PermissionDistribution.from_bots, bots)

    # Exact text targets.
    assert abs(dist.send_messages_percent - PAPER_SEND_MESSAGES) < tolerance(2.0)
    assert abs(dist.administrator_percent - PAPER_ADMINISTRATOR) < tolerance(2.0)
    assert abs(dist.valid_fraction - PAPER_VALID_FRACTION) < 0.02

    # Shape targets: send messages tops the chart, admin is a close second,
    # and every permission in the top-20 is requested by a nontrivial share.
    top = dist.top_permissions(20)
    assert top[0][0] == "send messages"
    assert top[1][0] == "administrator"
    assert all(percent > 2.0 for _, percent in top)

    # All three invalid classes appear (TXT-PERM).
    breakdown = dist.invalid_breakdown()
    assert set(breakdown) == {"invalid_link", "removed", "timeout"}
    assert all(count > 0 for count in breakdown.values())

    print()
    print(render_bar_chart(dist.fig3_series(), title="Figure 3 (reproduced)"))


def test_bench_admin_redundancy(benchmark, paper_scale_result):
    """Section 5: most admin-requesting bots also ask for redundant bits."""
    bots = paper_scale_result.crawl.bots
    dist = benchmark(PermissionDistribution.from_bots, bots)
    assert dist.admin_with_extras_fraction > 0.5
