"""Ablation: keyword traceability accuracy and naive pattern matching.

Two limitations the paper discusses in Section 5:

1. Keyword-based traceability can misfire on word-form variants.  We
   measure its accuracy against ground truth on the generated corpus.
2. Substring matching for Table-3 APIs counts occurrences in comments; the
   stricter comment-stripping variant quantifies that over-count.
"""

import random

from repro.codeanalysis.patterns import contains_check
from repro.ecosystem.policies import PolicySpec, render_policy
from repro.traceability.analyzer import TraceabilityAnalyzer
from repro.traceability.keywords import CATEGORIES


def test_bench_keyword_accuracy(benchmark, paper_world):
    """Keyword classification vs ground truth over every generated policy."""
    analyzer = TraceabilityAnalyzer()
    corpus = [
        (bot.policy, bot.policy_text)
        for bot in paper_world.ecosystem.bots
        if bot.policy.present and bot.policy.link_valid
    ]
    assert corpus

    def accuracy():
        correct = 0
        for spec, text in corpus:
            predicted, _ = analyzer.classify_text(text)
            correct += predicted.value == spec.expected_class
        return correct / len(corpus)

    result = benchmark(accuracy)
    assert result == 1.0  # matches the paper's clean 100-policy validation


def test_bench_keyword_wordform_limitation(benchmark):
    """Word-form variants the keyword family does NOT cover stay invisible —
    the exact failure mode the paper concedes."""
    analyzer = TraceabilityAnalyzer()

    def classify_pair():
        _, listed = analyzer.classify_text("We amass interaction records here.")
        _, unlisted = analyzer.classify_text("We amass interaction traces silently.")
        return listed, unlisted

    listed, unlisted = benchmark(classify_pair)
    assert "collect" in listed  # "records" is a listed keyword
    assert unlisted == set()  # "amass" alone is invisible to the method


def test_bench_comment_overcount(benchmark, paper_world):
    """How much does naive substring matching over-count vs comment-aware?"""
    repos = [
        (bot.github.files, bot.github.language)
        for bot in paper_world.ecosystem.bots
        if bot.github is not None and bot.github.has_source_code
        and bot.github.language in ("JavaScript", "Python")
    ]

    def count_both():
        naive = sum(1 for files, language in repos if contains_check(files, language))
        strict = sum(
            1 for files, language in repos if contains_check(files, language, ignore_comments=True)
        )
        return naive, strict

    naive, strict = benchmark(count_both)
    # Generated check snippets are real code (one JS variant is a comment-
    # annotated convention), so the strict count can only be <= naive.
    assert strict <= naive
    assert naive > 0


def test_bench_policy_corpus_generation_throughput(benchmark):
    """Cost of rendering a 1,000-policy corpus (generator-side)."""
    rng = random.Random(0)
    specs = []
    for _ in range(1000):
        categories = frozenset(rng.sample(list(CATEGORIES), rng.choice([1, 2, 3])))
        specs.append(PolicySpec(present=True, categories=categories, generic=rng.random() < 0.6))

    def render_all():
        return [render_policy(spec, "Bot", rng) for spec in specs]

    texts = benchmark(render_all)
    assert len(texts) == 1000
