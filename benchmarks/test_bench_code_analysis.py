"""TXT-CODE: the Section 4.2 code-analysis numbers.

Paper: 23.86% of active bots link GitHub; 60.46% of links are valid repos;
14.39% of active bots have public source; JavaScript 41% / Python 32% of
valid repos; permission checks present in 72.97% of JS repos but only 2.65%
of Python repos.
"""

from repro.analysis.code_stats import CodeAnalysisSummary
from repro.analysis.tables import render_table

from conftest import tolerance

PAPER_GITHUB_LINK_PERCENT = 23.86
PAPER_VALID_REPO_PERCENT = 60.46
PAPER_SOURCE_PERCENT = 14.39
PAPER_JS_SHARE = 41.0
PAPER_PY_SHARE = 32.0
PAPER_JS_CHECK_RATE = 72.97
PAPER_PY_CHECK_RATE = 2.65


def test_bench_code_analysis(benchmark, paper_scale_result):
    active = len(paper_scale_result.crawl.with_valid_permissions())
    links = sum(1 for bot in paper_scale_result.crawl.with_valid_permissions() if bot.github_url)
    analyses = paper_scale_result.repo_analyses

    summary = benchmark(CodeAnalysisSummary.from_analyses, active, links, analyses)

    assert abs(summary.github_link_percent - PAPER_GITHUB_LINK_PERCENT) < tolerance(1.5)
    assert abs(summary.valid_repo_percent_of_links - PAPER_VALID_REPO_PERCENT) < tolerance(4.0)
    assert abs(summary.source_percent_of_active - PAPER_SOURCE_PERCENT) < tolerance(1.5)
    assert abs(summary.language_percent("JavaScript") - PAPER_JS_SHARE) < tolerance(3.0)
    assert abs(summary.language_percent("Python") - PAPER_PY_SHARE) < tolerance(3.0)

    js_rate = summary.check_rate("JavaScript") * 100
    py_rate = summary.check_rate("Python") * 100
    assert abs(js_rate - PAPER_JS_CHECK_RATE) < tolerance(5.0)
    assert abs(py_rate - PAPER_PY_CHECK_RATE) < tolerance(2.0)
    # The paper's headline asymmetry: JS repos check, Python repos don't.
    assert js_rate / max(py_rate, 0.1) > 10

    print()
    print(
        render_table(
            ("Language", "Repos analyzed", "With checks", "Percent"),
            [
                (language, analyzed, checks, f"{percent:.2f}%")
                for language, analyzed, checks, percent in summary.check_table()
            ],
            title="Permission checks by language (reproduced)",
        )
    )
