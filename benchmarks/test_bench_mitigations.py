"""Extension benchmark: the full mitigation matrix for re-delegation.

One attack — an unprivileged member makes a privileged bot kick a victim —
against every defence the ecosystem offers:

| Defence | Outcome |
|---|---|
| none (Discord prefix command, unchecked bot)        | attack succeeds |
| developer check (`requires_user_permissions`)       | blocked by bot  |
| runtime policy enforcer (Slack/Teams posture)       | blocked by platform |
| slash command + ``default_member_permissions``      | blocked before dispatch |
"""

from repro.discordsim.behaviors import MODERATION_CHECKED, MODERATION_UNCHECKED, build_runtime
from repro.discordsim.guild import PermissionDenied
from repro.discordsim.oauth import build_invite_url
from repro.discordsim.permissions import Permission, Permissions
from repro.discordsim.slash import SlashCommandRegistry
from repro.platforms import make_platform
from repro.web.captcha import TwoCaptchaClient


def _world(platform):
    solver = TwoCaptchaClient(platform.clock, accuracy=1.0, seed=2)
    owner = platform.create_user("owner", phone_verified=True)
    guild = platform.create_guild(owner, "G")
    developer = platform.create_user("dev", phone_verified=True)
    application = platform.register_application(developer, "ModBot")
    if platform.policy.vetting_review:
        platform.vet_application(application.client_id)
    url = build_invite_url(application.client_id, Permissions.of(Permission.ADMINISTRATOR))
    screen = platform.begin_install(owner.user_id, url, guild.guild_id)
    answer = solver.solve(screen.captcha_prompt)
    platform.complete_install(owner.user_id, guild.guild_id, url, screen.captcha_challenge_id, answer)
    victim = platform.create_user("victim")
    platform.join_guild(victim.user_id, guild.guild_id)
    attacker = platform.create_user("attacker")
    platform.join_guild(attacker.user_id, guild.guild_id)
    return owner, guild, application, victim, attacker


def _prefix_attack(platform, behavior) -> bool:
    owner, guild, application, victim, attacker = _world(platform)
    build_runtime(platform, application.bot_user.user_id, behavior)
    channel = guild.text_channels()[0]
    platform.post_message(attacker.user_id, guild.guild_id, channel.channel_id, f"!kick {victim.user_id}")
    return victim.user_id not in guild.members


def _slash_attack(platform, protected: bool) -> bool:
    owner, guild, application, victim, attacker = _world(platform)
    registry = SlashCommandRegistry(platform)

    def kick_handler(interaction):
        bot_id = application.bot_user.user_id
        platform.guilds[interaction.guild_id].kick(bot_id, int(interaction.args[0]))

    registry.register(
        application.client_id,
        "kick",
        kick_handler,
        default_member_permissions=Permissions.of(Permission.KICK_MEMBERS) if protected else None,
    )
    channel = guild.text_channels()[0]
    try:
        registry.invoke(
            attacker.user_id, guild.guild_id, channel.channel_id, application.client_id, "kick",
            [str(victim.user_id)],
        )
    except PermissionDenied:
        pass
    return victim.user_id not in guild.members


def test_bench_mitigation_matrix(benchmark):
    def run_matrix():
        return {
            "no defence": _prefix_attack(make_platform("discord", captcha_seed=2), MODERATION_UNCHECKED),
            "developer check": _prefix_attack(make_platform("discord", captcha_seed=2), MODERATION_CHECKED),
            "runtime enforcer": _prefix_attack(make_platform("slack", captcha_seed=2), MODERATION_UNCHECKED),
            "slash unprotected": _slash_attack(make_platform("discord", captcha_seed=2), protected=False),
            "slash default_member_permissions": _slash_attack(
                make_platform("discord", captcha_seed=2), protected=True
            ),
        }

    outcomes = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    assert outcomes["no defence"] is True
    assert outcomes["developer check"] is False
    assert outcomes["runtime enforcer"] is False
    assert outcomes["slash unprotected"] is True
    assert outcomes["slash default_member_permissions"] is False
    print("\nattack succeeded?", outcomes)
