"""Ablation: scraper politeness vs the listing site's defences.

The methodology limits request rate and mimics human pacing.  This
ablation compares a polite and an aggressive scraper against the same
rate-limited site: the aggressive one hammers into 429s (and still
completes only thanks to its backoff handler), while the polite one glides
under the limit.
"""

import pytest

from repro.botstore.host import StoreDefenses, build_store_host
from repro.ecosystem.generator import EcosystemConfig, generate_ecosystem
from repro.scraper.base import ScraperConfig
from repro.scraper.topgg import TopGGScraper
from repro.web.captcha import TwoCaptchaClient
from repro.web.network import VirtualClock, VirtualInternet

DEFENSES = StoreDefenses(rate_limit_requests=30, rate_limit_window=60.0, captcha_enabled=False)


def _crawl(think_time: float, pages: int = 4):
    ecosystem = generate_ecosystem(EcosystemConfig(n_bots=120, seed=3, honeypot_window=20))
    clock = VirtualClock()
    internet = VirtualInternet(clock, seed=3)
    build_store_host(ecosystem, internet, DEFENSES)
    scraper = TopGGScraper(
        internet,
        solver=TwoCaptchaClient(clock, accuracy=1.0),
        # The aggressive configuration also ignores robots.txt pacing.
        config=ScraperConfig(
            min_think_time=think_time, max_think_time=think_time, respect_robots=think_time > 0
        ),
    )
    result = scraper.crawl(max_pages=pages, resolve_permissions=False)
    return scraper, result, clock


def test_bench_polite_scraper(benchmark):
    scraper, result, clock = benchmark.pedantic(lambda: _crawl(think_time=2.5), rounds=1, iterations=1)
    assert len(result.bots) == 100
    assert scraper.stats.rate_limited == 0  # never tripped the limiter


def test_bench_aggressive_scraper(benchmark):
    scraper, result, clock = benchmark.pedantic(lambda: _crawl(think_time=0.0), rounds=1, iterations=1)
    assert len(result.bots) == 100  # backoff recovers everything...
    assert scraper.stats.rate_limited > 0  # ...but hammered into 429s


def test_bench_politeness_rate_bound(benchmark):
    """The polite crawl stays under the disruption threshold end to end."""
    scraper, result, clock = benchmark.pedantic(lambda: _crawl(think_time=2.5), rounds=1, iterations=1)
    internet = scraper.internet
    rate = internet.request_rate(scraper.browser.client.client_id, window=clock.now() or 1.0)
    assert rate < 0.5  # requests/second, sustained — no service disruption
