"""Extension benchmark: learned traceability vs the keyword baseline.

Section 5 proposes ML-based policy analysis as future work.  We train a
dependency-free Naive Bayes multi-label classifier on labelled policies and
compare it with the keyword method on two corpora: the standard one (where
keywords are exact by construction) and a synonym-shifted one (policies
describing the same practices with words outside the keyword families).
"""

from repro.traceability.mlmodel import (
    NaiveBayesTraceability,
    build_labelled_corpus,
    keyword_baseline_evaluation,
)


def test_bench_nb_training_throughput(benchmark):
    train = build_labelled_corpus(600, seed=11, unlisted_fraction=0.3)

    def fit():
        model = NaiveBayesTraceability()
        model.train(train)
        return model

    model = benchmark(fit)
    assert model.trained_on == 600


def test_bench_nb_vs_keywords_standard(benchmark):
    """On the standard corpus the keyword method is unbeatable (exact)."""
    test = build_labelled_corpus(300, seed=12)
    train = build_labelled_corpus(600, seed=13)
    model = NaiveBayesTraceability()
    model.train(train)

    def evaluate_both():
        return model.evaluate(test), keyword_baseline_evaluation(test)

    nb_report, keyword_report = benchmark(evaluate_both)
    assert keyword_report.subset_accuracy == 1.0
    assert nb_report.macro_f1() > 0.9


def test_bench_nb_vs_keywords_synonym_shift(benchmark):
    """On synonym-shifted policies the keyword method collapses; NB holds."""
    test = build_labelled_corpus(300, seed=14, unlisted_fraction=1.0)
    train = build_labelled_corpus(800, seed=15, unlisted_fraction=0.5)
    model = NaiveBayesTraceability()
    model.train(train)

    def evaluate_both():
        return model.evaluate(test), keyword_baseline_evaluation(test)

    nb_report, keyword_report = benchmark(evaluate_both)
    assert keyword_report.subset_accuracy == 0.0  # total blindness
    assert keyword_report.macro_f1() < 0.2
    assert nb_report.macro_f1() > 0.8
    print(
        f"\nsynonym-shifted corpus: keyword macro-F1={keyword_report.macro_f1():.2f}, "
        f"NB macro-F1={nb_report.macro_f1():.2f}"
    )
