"""Extension benchmark: longitudinal drift detection.

Implements the paper's future-work direction (temporal, large-scale
measurement) and its threat-model warning that permissions can change
after install: evolve the full-scale ecosystem one epoch and measure the
snapshot diff, asserting that silent escalation is detected exactly.
"""

from repro.analysis.longitudinal import compare_snapshots, trend
from repro.ecosystem.evolution import EvolutionConfig, evolve_ecosystem


def test_bench_snapshot_diff(benchmark, paper_world):
    before = paper_world.ecosystem
    after, log = evolve_ecosystem(before, EvolutionConfig(), seed=404)

    delta = benchmark(compare_snapshots, before, after)

    # The diff recovers the ground-truth evolution log exactly.
    assert set(delta.removed_bots) == set(log.removed)
    assert set(delta.added_bots) == set(log.added)
    surviving_escalations = {name for name in log.escalated if name not in log.invites_broken}
    assert {record.bot_name for record in delta.escalations} == surviving_escalations
    # Escalation enlarges risk, never shrinks it.
    assert all(record.risk_delta >= 0 for record in delta.escalations)
    print(
        f"\nepoch diff: +{len(delta.added_bots)} bots, -{len(delta.removed_bots)}, "
        f"{delta.escalation_count} escalations ({len(delta.gained_administrator())} gained admin), "
        f"{len(delta.policy_adopters)} adopted policies"
    )


def test_bench_trend_series(benchmark, paper_world):
    snapshots = [paper_world.ecosystem]
    current = paper_world.ecosystem
    for epoch in range(2):
        current, _ = evolve_ecosystem(current, seed=500 + epoch)
        snapshots.append(current)

    points = benchmark(trend, snapshots)
    assert len(points) == 3
    # Admin rate stays in the paper's neighbourhood across epochs.
    for point in points:
        assert 0.5 < point.admin_rate < 0.6
