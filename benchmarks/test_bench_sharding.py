"""SCALING: sequential vs sharded wall-clock on the parallel stages.

The honeypot stage's cost is superlinear in the number of co-resident
runtimes: every guild message fans out through the platform's event bus to
every subscribed bot runtime, so one platform hosting N bots dispatches
O(N^2) visibility checks over the campaign.  Sharding the sample onto 4
isolated platforms divides that fan-out, which is where the wall-clock win
comes from — threads add nothing on one core; the speedup is algorithmic.

This benchmark records both wall-clocks so the speedup is tracked across
PRs, asserts the >= 2x acceptance bar on the honeypot + traceability
stages, and checks the merged statistics match the sequential run's.
"""

from __future__ import annotations

import os
from collections import Counter

from repro.core.checkpoint import STAGE_HONEYPOT, STAGE_TRACEABILITY
from repro.core.config import PipelineConfig
from repro.core.pipeline import AssessmentPipeline

#: Big enough that the honeypot's quadratic fan-out dominates; override to
#: shrink locally (the speedup shrinks with it — below ~1000 bots the
#: constant costs win and the 2x bar no longer applies).
SHARD_BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SHARD_SCALE", 2400))
SHARDS = 4
SPEEDUP_FLOOR = 2.0 if SHARD_BENCH_SCALE >= 2000 else 1.0


def _config(shards: int) -> PipelineConfig:
    return PipelineConfig(
        n_bots=SHARD_BENCH_SCALE,
        seed=11,
        honeypot_sample_size=SHARD_BENCH_SCALE,
        validation_sample_size=50,
        shards=shards,
    )


def _statistics(result) -> dict:
    return {
        "bots": result.bots_collected,
        "active": result.active_bots,
        "trace_order": [r.bot_name for r in result.traceability_results],
        "trace_classes": Counter(r.classification.value for r in result.traceability_results),
        "table2": result.traceability_summary.table2(),
        "check_table": result.code_summary.check_table(),
        "honeypot_tested": result.honeypot.bots_tested,
        "honeypot_flagged": sorted(o.bot_name for o in result.honeypot.flagged_bots),
        "honeypot_install_failures": result.honeypot.install_failures,
    }


def _parallel_stage_wall(result) -> float:
    metrics = result.metrics
    return (
        metrics.stage(STAGE_HONEYPOT).wall_seconds
        + metrics.stage(STAGE_TRACEABILITY).wall_seconds
    )


def test_bench_sharded_speedup_on_parallel_stages(benchmark):
    sequential = AssessmentPipeline(_config(1)).run()

    sharded = benchmark.pedantic(
        lambda: AssessmentPipeline(_config(SHARDS)).run(), rounds=1, iterations=1
    )

    sequential_wall = _parallel_stage_wall(sequential)
    sharded_wall = _parallel_stage_wall(sharded)
    speedup = sequential_wall / max(sharded_wall, 1e-9)
    benchmark.extra_info["scale"] = SHARD_BENCH_SCALE
    benchmark.extra_info["sequential_stage_wall_s"] = round(sequential_wall, 3)
    benchmark.extra_info["sharded_stage_wall_s"] = round(sharded_wall, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    # The merge changes nothing the paper reports.
    assert _statistics(sharded) == _statistics(sequential)

    # Virtual time merges as max-across-shards: the simulated campaign got
    # shorter too, not just the wall clock.
    assert sharded.virtual_seconds < sequential.virtual_seconds

    assert speedup >= SPEEDUP_FLOOR, (
        f"sharded stages took {sharded_wall:.2f}s vs sequential {sequential_wall:.2f}s "
        f"({speedup:.2f}x, floor {SPEEDUP_FLOOR}x at scale {SHARD_BENCH_SCALE})"
    )
