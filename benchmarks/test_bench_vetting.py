"""Extension benchmark: what would rigorous vetting do to this ecosystem?

Runs the Section-7 mitigation (static vetting gates) over the full active
population and measures the rejection rate and its reasons — quantifying
how far today's ecosystem is from a vetted one — plus the dynamic gate's
catch/evade behaviour on the invasive behaviours.
"""

from repro.core.vetting import VettingPipeline, VettingPolicy, ground_truth_evasions
from repro.discordsim import behaviors


def test_bench_static_vetting_population(benchmark, paper_world):
    pipeline = VettingPipeline(VettingPolicy(run_dynamic_review=False))
    active = [bot for bot in paper_world.ecosystem.bots if bot.has_valid_permissions]

    report = benchmark.pedantic(lambda: pipeline.vet_population(active), rounds=1, iterations=1)

    rejection_rate = len(report.rejected) / len(report.verdicts)
    # The measured ecosystem (55% admin, ~96% no policy) overwhelmingly
    # fails the paper's own mitigation bar.
    assert rejection_rate > 0.8
    reasons = report.rejection_reasons()
    assert reasons.get("permission misuse", 0) > 0.4 * len(active)  # the admin cohort
    assert reasons.get("undisclosed data access", 0) > 0
    print(f"\nvetting rejection rate: {rejection_rate:.1%}; reasons: {reasons}")


def test_bench_dynamic_gate_catch_and_evade(benchmark, paper_world):
    import dataclasses

    from repro.discordsim.permissions import Permission, Permissions
    from repro.ecosystem.generator import InviteStatus
    from repro.ecosystem.policies import PolicySpec

    base = next(
        bot
        for bot in paper_world.ecosystem.bots
        if bot.invite_status is InviteStatus.VALID and bot.behavior == behaviors.BENIGN
    )

    def submission(behavior):
        clone = dataclasses.replace(base)
        clone.name = f"{base.name}-{behavior}"
        clone.behavior = behavior
        clone.permissions = Permissions.of(
            Permission.SEND_MESSAGES, Permission.VIEW_CHANNEL, Permission.READ_MESSAGE_HISTORY
        )
        clone.policy = PolicySpec(present=True, categories=frozenset({"collect"}), link_valid=True)
        clone.github = None
        return clone

    def run_gate():
        pipeline = VettingPipeline(seed=12)
        submissions = [
            submission(behaviors.BENIGN),
            submission(behaviors.NOSY_OPERATOR),
            submission(behaviors.SLEEPER),
        ]
        return pipeline.vet_population(submissions), submissions

    report, submissions = benchmark.pedantic(run_gate, rounds=1, iterations=1)
    by_name_approved = {verdict.bot_name: verdict.approved for verdict in report.verdicts}
    # Benign passes; the nosy operator is caught in the sandbox; the sleeper
    # evades the one-day review (why vetting must be continuous).
    assert by_name_approved[submissions[0].name]
    assert not by_name_approved[submissions[1].name]
    assert by_name_approved[submissions[2].name]
    assert ground_truth_evasions(report, submissions) == [submissions[2].name]