"""TAB1: bots distribution by number of developers.

Paper (Table 1): 89.08% of the 12,427 developers published exactly one bot;
8.76% two; the long tail tops out at 12 bots for a single developer
(editid#6714).
"""

from repro.analysis.developer_stats import DeveloperDistribution
from repro.analysis.tables import render_table

from conftest import tolerance

PAPER_ONE_BOT_PERCENT = 89.08
PAPER_TWO_BOT_PERCENT = 8.76
PAPER_MAX_BOTS = 12


def test_bench_table1(benchmark, paper_scale_result):
    bots = paper_scale_result.crawl.bots

    dist = benchmark(DeveloperDistribution.from_bots, bots)
    table = dist.table1()
    by_count = {row[0]: row for row in table}

    assert abs(by_count[1][2] - PAPER_ONE_BOT_PERCENT) < tolerance(1.5)
    assert abs(by_count[2][2] - PAPER_TWO_BOT_PERCENT) < tolerance(1.5)
    # Monotonically shrinking tail, capped near the paper's 12-bot maximum.
    percents = [row[2] for row in table]
    assert percents == sorted(percents, reverse=True)
    assert dist.max_bots_by_one_developer <= PAPER_MAX_BOTS

    print()
    print(
        render_table(
            ("No of Bots", "Developers", "Percent"),
            [(count, developers, f"{percent:.2f}%") for count, developers, percent in table],
            title="Table 1 (reproduced)",
        )
    )
    tag, bot_count = dist.most_prolific()
    print(f"Most prolific developer: {tag} ({bot_count} bots)")
