"""FIG2: the install consent page.

Figure 2 shows an example chatbot installation page.  The reproduction is
the OAuth consent screen renderer: this benchmark renders + re-parses the
page for every valid bot in the population and verifies the permission list
round-trips exactly.
"""

from repro.discordsim.oauth import ConsentScreen, parse_invite_url
from repro.web.dom import parse_html


def test_bench_consent_render_roundtrip(benchmark, paper_world):
    bots = paper_world.ecosystem.with_valid_permissions()[:500]

    def render_all():
        pages = []
        for bot in bots:
            invite = parse_invite_url(bot.invite_url)
            screen = ConsentScreen(bot_name=bot.name, invite=invite, guild_names=["My Server"])
            pages.append(screen.render_html())
        return pages

    pages = benchmark(render_all)

    # Round-trip check on a sample: the page communicates exactly the
    # requested permission set, which is what the user consents to.
    for bot, page in list(zip(bots, pages))[:50]:
        parsed = parse_html(page)
        names = [node.text for node in parsed.select("ul#permission-list li.permission-item")]
        assert names == bot.permissions.display_names()
        assert parsed.select_one("#bot-name").text == bot.name
