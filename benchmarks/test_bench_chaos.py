"""ROBUSTNESS: the pipeline under chaos-grade fault injection.

Runs the full assessment pipeline under a hostile fault schedule (outages,
5xx bursts, latency spikes, rate-limit storms, captcha surges, truncated
HTML) and checks the resilience layer's contract:

- a hostile run *completes* end to end — degraded, never crashed;
- partial coverage stays within tolerance of the calm run, and every bot
  lost to a fault is accounted in the :class:`FaultLedger`;
- two same-seed hostile runs inject identical fault streams and produce
  byte-identical ledgers.

The default chaos profiles are tuned for the paper's full-scale timescale
(multi-day crawls); a shrunken bench world compresses all its exchanges
into the first few hundred virtual seconds, so the profile is rescaled to
a matching epoch — otherwise every fault window opens after the run ends.
"""

from repro.core.checkpoint import STAGE_CODE, STAGE_CRAWL, STAGE_TRACEABILITY
from repro.core.config import PipelineConfig
from repro.core.pipeline import AssessmentPipeline
from repro.web.chaos import HOSTILE

N_BOTS = 60

#: HOSTILE, compressed onto the bench world's timescale and intensified so
#: a short run still crosses several fault windows per kind.
BENCH_HOSTILE = HOSTILE.scaled(
    epoch=120.0,
    window_duration=(30.0, 90.0),
    outage_rate=0.3,
    error_burst_rate=0.5,
    latency_spike_rate=0.4,
    rate_limit_rate=0.4,
    captcha_surge_rate=0.3,
    truncation_rate=0.05,
)


def _config(chaos=None, chaos_seed=0) -> PipelineConfig:
    return PipelineConfig(
        n_bots=N_BOTS,
        seed=3,
        honeypot_sample_size=10,
        validation_sample_size=20,
        chaos_profile=chaos,
        chaos_seed=chaos_seed,
    )


def _run(chaos=None, chaos_seed=0):
    return AssessmentPipeline(_config(chaos, chaos_seed)).run()


def test_bench_hostile_run_completes_and_accounts_every_bot(benchmark):
    calm = _run()

    result = benchmark.pedantic(lambda: _run(BENCH_HOSTILE, chaos_seed=0), rounds=1, iterations=1)

    # Completed end to end: every stage produced output (degraded is fine).
    assert set(result.stage_status.values()) <= {"completed", "degraded"}
    assert result.permission_distribution is not None
    assert result.traceability_summary is not None
    assert result.code_summary is not None
    assert result.honeypot is not None

    # The ledger accounts every bot the crawl failed to collect.
    ledger = result.fault_ledger
    assert result.bots_collected + ledger.bots_skipped(STAGE_CRAWL) == N_BOTS

    # Partial coverage within tolerance of calm: the chaos run keeps a
    # majority of the population and loses nothing silently.
    assert calm.bots_collected == N_BOTS
    assert result.bots_collected >= N_BOTS // 2

    # Downstream stages account their skips against the active population.
    for stage in (STAGE_TRACEABILITY, STAGE_CODE):
        assert ledger.bots_skipped(stage) <= result.active_bots

    print()
    print(ledger.summary_line())
    print(f"stage status: {result.stage_status}")
    print(f"collected {result.bots_collected}/{N_BOTS}, active {result.active_bots}")
    print(
        f"retries: {result.scrape_stats.transient_retries}, "
        f"rate limited: {result.scrape_stats.rate_limited}, "
        f"malformed Retry-After: {result.scrape_stats.malformed_retry_after}, "
        f"circuit short-circuits: {result.scrape_stats.circuit_short_circuits}"
    )


def test_bench_hostile_accounting_closes_on_second_seed():
    result = _run(BENCH_HOSTILE, chaos_seed=1)
    assert set(result.stage_status.values()) <= {"completed", "degraded"}
    assert result.bots_collected + result.fault_ledger.bots_skipped(STAGE_CRAWL) == N_BOTS


def test_bench_same_seed_runs_are_byte_identical():
    first = _run(BENCH_HOSTILE, chaos_seed=0)
    second = _run(BENCH_HOSTILE, chaos_seed=0)
    assert first.fault_ledger.to_json() == second.fault_ledger.to_json()
    assert [bot.listing_id for bot in first.crawl.bots] == [bot.listing_id for bot in second.crawl.bots]
    assert first.stage_status == second.stage_status


def test_bench_different_chaos_seeds_differ():
    a = _run(BENCH_HOSTILE, chaos_seed=0)
    b = _run(BENCH_HOSTILE, chaos_seed=1)
    assert a.fault_ledger.to_json() != b.fault_ledger.to_json()
