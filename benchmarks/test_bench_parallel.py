"""SCALING: threaded vs process-pool shard execution.

PR 2's sharded executor bought an *algorithmic* win (splitting the
honeypot's quadratic co-resident fan-out) but no *hardware* win: shard
buckets are pure-Python simulation, so a ThreadPoolExecutor serialises
them on the GIL and shards=4 uses one core.  ``parallel=True`` moves the
buckets into worker processes; with 4 real cores the honeypot +
traceability stages should run >= 2.5x faster than the threaded executor
at the same shard count, with byte-identical output.

On fewer than 4 cores the speedup physically cannot appear (the pool
multiplexes onto the cores that exist and adds world-rebuild overhead),
so the floor is asserted only when the machine can express it; the
measured numbers and core count are always recorded in the benchmark's
``extra_info`` so the trajectory (``BENCH_PARALLEL.json``) stays honest.
"""

from __future__ import annotations

import json
import os

from repro.core.checkpoint import STAGE_HONEYPOT, STAGE_TRACEABILITY
from repro.core.config import PipelineConfig
from repro.core.pipeline import AssessmentPipeline
from repro.core.serialize import comparable_result, result_to_dict

#: Big enough that per-bot stage work dominates the fixed world-rebuild
#: cost each pool worker pays once; override to shrink locally.
PARALLEL_BENCH_SCALE = int(os.environ.get("REPRO_BENCH_PARALLEL_SCALE", 1600))
SHARDS = 4
#: The acceptance bar needs 4 cores to be physically expressible, and a
#: big-enough world that fixed costs do not drown the parallel section.
CORES = os.cpu_count() or 1
SPEEDUP_FLOOR = 2.5 if CORES >= 4 and PARALLEL_BENCH_SCALE >= 1000 else 0.0


def _config(parallel: bool) -> PipelineConfig:
    return PipelineConfig(
        n_bots=PARALLEL_BENCH_SCALE,
        seed=11,
        honeypot_sample_size=PARALLEL_BENCH_SCALE,
        validation_sample_size=50,
        shards=SHARDS,
        parallel=parallel,
    )


def _parallel_stage_wall(result) -> float:
    metrics = result.metrics
    return (
        metrics.stage(STAGE_HONEYPOT).wall_seconds
        + metrics.stage(STAGE_TRACEABILITY).wall_seconds
    )


def _comparable(result) -> str:
    return json.dumps(comparable_result(result_to_dict(result)), sort_keys=True, indent=1)


def test_bench_process_pool_speedup_over_threads(benchmark):
    threaded = AssessmentPipeline(_config(parallel=False)).run()

    parallel = benchmark.pedantic(
        lambda: AssessmentPipeline(_config(parallel=True)).run(), rounds=1, iterations=1
    )

    threaded_wall = _parallel_stage_wall(threaded)
    parallel_wall = _parallel_stage_wall(parallel)
    speedup = threaded_wall / max(parallel_wall, 1e-9)
    benchmark.extra_info["scale"] = PARALLEL_BENCH_SCALE
    benchmark.extra_info["shards"] = SHARDS
    benchmark.extra_info["cpu_cores"] = CORES
    benchmark.extra_info["threaded_stage_wall_s"] = round(threaded_wall, 3)
    benchmark.extra_info["process_stage_wall_s"] = round(parallel_wall, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    # The execution substrate must be invisible in the output: not just
    # statistics-equal, byte-identical on the comparable result JSON.
    assert _comparable(parallel) == _comparable(threaded)

    assert speedup >= SPEEDUP_FLOOR, (
        f"process pool took {parallel_wall:.2f}s vs threaded {threaded_wall:.2f}s "
        f"({speedup:.2f}x, floor {SPEEDUP_FLOOR}x on {CORES} cores at scale {PARALLEL_BENCH_SCALE})"
    )
