"""TAB2: Discord traceability results.

Paper (Table 2, over 15,525 active bots): 37.27% website link, 4.35% privacy
policy link, 4.33% valid privacy policy.  95.67% broken traceability, zero
complete policies, and the 100-policy manual review found no keyword
misclassifications.
"""

from repro.analysis.tables import render_table
from repro.analysis.traceability_stats import TraceabilitySummary

from conftest import tolerance

PAPER_WEBSITE_PERCENT = 37.27
PAPER_POLICY_LINK_PERCENT = 4.35
PAPER_POLICY_PERCENT = 4.33
PAPER_BROKEN_PERCENT = 95.67


def test_bench_table2(benchmark, paper_scale_result):
    results = paper_scale_result.traceability_results

    summary = benchmark(TraceabilitySummary.from_results, results)
    table = {row[0]: row for row in summary.table2()}

    assert abs(table["Website Link"][2] - PAPER_WEBSITE_PERCENT) < tolerance(1.5)
    assert abs(table["Privacy Policy Link"][2] - PAPER_POLICY_LINK_PERCENT) < tolerance(0.8)
    assert abs(table["Privacy Policy"][2] - PAPER_POLICY_PERCENT) < tolerance(0.8)
    assert abs(summary.broken_fraction * 100 - PAPER_BROKEN_PERCENT) < tolerance(0.8)
    assert summary.complete_count == 0  # "we do not find any complete traceability"
    assert summary.partial_count == summary.with_valid_policy
    # "many of these policies are generic"
    assert summary.generic_fraction_of_valid > 0.4

    print()
    print(
        render_table(
            ("Features", "Count", "Percent"),
            [(feature, count, f"{percent:.2f}%") for feature, count, percent in summary.table2()],
            title="Table 2 (reproduced)",
        )
    )


def test_bench_manual_validation(benchmark, paper_scale_result, paper_world):
    """Paper: 100 sampled policies, none misclassified by the keyword method."""
    validation = paper_scale_result.validation
    assert validation is not None
    assert validation.misclassified == 0

    # Benchmark re-running the validation against the generated corpus.
    from repro.traceability.validation import ManualReviewValidator

    policies = [
        (bot.name, bot.policy, bot.policy_text)
        for bot in paper_world.ecosystem.bots
        if bot.policy.present and bot.policy.link_valid
    ]
    report = benchmark(lambda: ManualReviewValidator(seed=5).validate(policies, sample_size=100))
    assert report.misclassified == 0
