"""TAB3: the permission/role-check APIs and their detection.

Table 3 lists four APIs (``.hasPermission(``, ``.has(``,
``member.roles.cache``, ``userPermissions``).  This benchmark verifies each
is detected in representative code and measures pattern-scan throughput
over the full scraped repository corpus.
"""

from repro.codeanalysis.patterns import CHECK_PATTERNS, find_check_hits

FIXTURES = {
    ".hasPermission(": {"index.js": "if (!message.member.hasPermission('KICK_MEMBERS')) return;"},
    ".has(": {"bot.py": "if not perms.has(Permission.KICK_MEMBERS):\n    return"},
    "member.roles.cache": {"mod.js": "const ok = member.roles.cache.some(r => r.name === 'Staff');"},
    "userPermissions": {"cmd.js": "exports.userPermissions = ['MANAGE_MESSAGES'];"},
}


def test_bench_table3_each_api_detected(benchmark):
    def detect_all():
        found = {}
        for pattern, files in FIXTURES.items():
            hits = find_check_hits(files)
            found[pattern] = any(hit.pattern == pattern for hit in hits)
        return found

    found = benchmark(detect_all)
    assert all(found.values()), found
    assert CHECK_PATTERNS == (".hasPermission(", ".has(", "member.roles.cache", "userPermissions")


def test_bench_pattern_scan_throughput(benchmark, paper_world):
    """Scan every generated source file in the ecosystem for the four APIs."""
    corpora = [
        bot.github.files
        for bot in paper_world.ecosystem.bots
        if bot.github is not None and bot.github.has_source_code
    ]
    assert len(corpora) > 100

    def scan_all():
        return sum(1 for files in corpora if find_check_hits(files))

    with_checks = benchmark(scan_all)
    assert 0 < with_checks < len(corpora)


